//! Self-timed execution of Pegasus circuits.
//!
//! The simulator implements the asynchronous-circuit semantics of §3.1:
//! every edge is a bounded FIFO channel ("wires with registers"), and a node
//! fires as soon as its required inputs are available and its consumers have
//! space — there is no program counter and no instruction issue. Loop
//! pipelining therefore *emerges*: multiple iterations flow through the
//! merge/eta rings concurrently, throttled only by data dependences, token
//! edges and channel capacity. Memory operations go through a load-store
//! queue with a configurable number of ports (§7.3).
//!
//! Functional determinism follows from Kahn-network discipline: each channel
//! delivers values in order, merges pop in global arrival order, and
//! run-time constants are modeled as always-available *sticky* sources.

use crate::backend::{backend_for, BackendKind};
use crate::critpath::{self, CritState, CritSummary, EdgeClass, NO_REC};
use crate::memory::{Machine, MemStats, MemSystem};
use crate::profile::{kind_label, NodeProfile, SimProfile, StallCause};
use crate::sched::{Ev, EventQueue, MemRequest, PendingOut, PortFifos, TokenGenState, RECENT_CAP};
use crate::trace::{Trace, TraceEvent};
use crate::wavecap::{stall_code, Wave, WaveState};
use cfgir::types::{BinOp, Type};
use pegasus::{FlatPorts, Graph, NodeId, NodeKind, Src, VClass};
use std::collections::VecDeque;
use std::fmt;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The memory system timing model.
    pub mem: MemSystem,
    /// Memory operations that may issue per cycle (LSQ ports).
    pub lsq_ports: u32,
    /// Maximum memory operations in flight (LSQ size).
    pub lsq_size: u32,
    /// FIFO depth of every channel (hardware registers per wire).
    pub channel_capacity: usize,
    /// Hard cycle limit; exceeding it is an error.
    pub max_cycles: u64,
    /// Collect a per-node firing/stall profile ([`SimResult::profile`]).
    /// Off by default: the uninstrumented hot path pays only a branch.
    pub profile: bool,
    /// Record the event stream for Chrome-trace export
    /// ([`SimResult::trace`]). Substantially more memory than `profile`.
    pub trace: bool,
    /// Record every firing's last-arriving input and extract the dynamic
    /// critical path at completion ([`SimResult::crit`]). Adds one flat
    /// record per firing stage and a slab mirroring the channel FIFOs;
    /// the uninstrumented path pays only a branch.
    pub critpath: bool,
    /// Capture per-signal waveforms — value changes, FIFO occupancy,
    /// firings, predicate outcomes and stall transitions — into
    /// [`SimResult::waves`] for VCD export and `cashdbg` replay. Memory
    /// scales with total channel activity (comparable to `trace`); the
    /// uninstrumented path pays only a branch per hook site.
    pub waves: bool,
    /// Which simulator backend executes the circuit. Defaults to the
    /// `CASH_BACKEND` environment variable (`event` when unset); both
    /// backends are observationally identical (see `tests/backend_equiv`),
    /// so this only trades simulation wall time.
    pub backend: BackendKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mem: MemSystem::default(),
            lsq_ports: 2,
            lsq_size: 16,
            channel_capacity: 2,
            max_cycles: 200_000_000,
            profile: false,
            trace: false,
            critpath: false,
            waves: false,
            backend: BackendKind::from_env(),
        }
    }
}

impl SimConfig {
    /// A perfect-memory configuration (useful for functional tests).
    pub fn perfect() -> Self {
        SimConfig { mem: MemSystem::Perfect { latency: 2 }, ..SimConfig::default() }
    }

    /// This configuration with profiling (and optionally tracing) enabled.
    pub fn with_observability(mut self, profile: bool, trace: bool) -> Self {
        self.profile = profile;
        self.trace = trace;
        self
    }

    /// This configuration with critical-path recording enabled.
    pub fn with_critpath(mut self, critpath: bool) -> Self {
        self.critpath = critpath;
        self
    }

    /// This configuration with waveform capture enabled.
    pub fn with_waves(mut self, waves: bool) -> Self {
        self.waves = waves;
        self
    }

    /// This configuration pinned to a specific backend (ignoring
    /// `CASH_BACKEND`) — differential tests and goldens use this.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// The outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The value returned (if the returning `Return` carried one).
    pub ret: Option<i64>,
    /// Cycle at which the program returned.
    pub cycles: u64,
    /// Memory statistics (dynamic loads/stores count only predicate-true
    /// accesses).
    pub stats: MemStats,
    /// Total node firings — a proxy for dynamic operation count.
    pub fired: u64,
    /// Times the scheduler's zero-latency spin guard tripped and pushed
    /// the rest of a same-cycle cascade into the next cycle. Zero for
    /// every well-formed circuit; a nonzero count flags a (near-)livelock
    /// that would otherwise be silently absorbed as extra cycles.
    pub deferrals: u64,
    /// Wall-clock time the simulation took, microseconds (the simulator's
    /// own cost, not the simulated circuit's — mirrors `opt.us`).
    pub wall_us: u64,
    /// Which backend produced this result (`"event"` or `"compiled"`).
    pub backend: &'static str,
    /// Per-node firing/stall profile ([`SimConfig::profile`]).
    pub profile: Option<SimProfile>,
    /// Recorded event stream ([`SimConfig::trace`]).
    pub trace: Option<Trace>,
    /// Aggregated dynamic critical path ([`SimConfig::critpath`]).
    pub crit: Option<CritSummary>,
    /// Captured waveforms ([`SimConfig::waves`]).
    pub waves: Option<Wave>,
}

impl SimResult {
    /// Serializes the aggregate simulation outcome in the shared
    /// `cash-stats-v1` JSON dialect (stable key order, no whitespace).
    /// Per-node profiles and traces are exported separately
    /// ([`SimProfile::to_json`], [`Trace::to_chrome_json`]).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "{{\"ret\":{},\"cycles\":{},\"fired\":{},\"deferrals\":{},\"us\":{},\"mem\":{},\"backend\":\"{}\"",
            self.ret.map_or("null".to_string(), |v| v.to_string()),
            self.cycles,
            self.fired,
            self.deferrals,
            self.wall_us,
            self.stats.to_json(),
            self.backend,
        );
        if let Some(p) = &self.profile {
            // Stall-cause totals across all nodes, same keys as the
            // per-node profile's "stalled" object.
            let mut tot = [0u64; 5];
            for n in &p.nodes {
                tot[0] += n.stalled_data;
                tot[1] += n.stalled_pred;
                tot[2] += n.stalled_token;
                tot[3] += n.stalled_lsq;
                tot[4] += n.stalled_output;
            }
            let _ = write!(
                s,
                ",\"stalled\":{{\"data\":{},\"pred\":{},\"token\":{},\"lsq\":{},\"out\":{}}}",
                tot[0], tot[1], tot[2], tot[3], tot[4]
            );
        }
        if let Some(c) = &self.crit {
            let _ = write!(s, ",\"crit\":{}", c.to_json());
        }
        if let Some(w) = &self.waves {
            let _ = write!(s, ",\"waves\":{}", w.summary_json());
        }
        s.push('}');
        s
    }
}

/// One node that could not make progress when a deadlock was declared:
/// which input ports already held a value and which were still missing,
/// with the value class (data vs. predicate vs. token) of each missing
/// port. An empty `missing` list means the node was ready to fire but
/// blocked on consumer channel space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedNode {
    /// The stuck node.
    pub node: NodeId,
    /// Short operation label (e.g. `"load"`, `"eta"`).
    pub op: String,
    /// Hyperblock the node belongs to.
    pub hb: u32,
    /// Input ports whose value had arrived.
    pub have: Vec<u16>,
    /// Input ports still waiting, with the class each carries.
    pub missing: Vec<(u16, VClass)>,
}

impl fmt::Display for BlockedNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.missing.is_empty() {
            return write!(
                f,
                "{}({} hb{}) ready but blocked on output space",
                self.node, self.op, self.hb
            );
        }
        write!(f, "{}({} hb{}) waiting on", self.node, self.op, self.hb)?;
        for (i, (port, class)) in self.missing.iter().enumerate() {
            let kind = match class {
                VClass::Data => "data",
                VClass::Pred => "pred",
                VClass::Token => "token",
            };
            write!(f, "{} {kind}@{port}", if i == 0 { "" } else { "," })?;
        }
        Ok(())
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Nothing can fire, nothing is in flight, and no return has happened.
    /// `blocked` reports every node with partial inputs and what it was
    /// waiting for (see [`BlockedNode`]).
    Deadlock { cycle: u64, blocked: Vec<BlockedNode> },
    /// The cycle limit was reached (often an infinite source-level loop).
    MaxCycles { limit: u64 },
    /// A `Param` node had no corresponding argument.
    MissingArgument { index: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, blocked } => {
                write!(f, "dataflow deadlock at cycle {cycle}")?;
                if !blocked.is_empty() {
                    write!(f, " ({} blocked node(s):", blocked.len())?;
                    for b in blocked.iter().take(4) {
                        write!(f, " {b};")?;
                    }
                    if blocked.len() > 4 {
                        write!(f, " …")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            SimError::MaxCycles { limit } => write!(f, "exceeded {limit} simulated cycles"),
            SimError::MissingArgument { index } => {
                write!(f, "no argument supplied for parameter {index}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs `graph` on `machine` with the given arguments, dispatching to the
/// backend selected in `config` (see [`BackendKind`]).
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate(
    graph: &Graph,
    machine: &mut Machine,
    args: &[i64],
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    observe(|| backend_for(config.backend).run(graph, machine, args, config))
}

/// Wraps one raw backend run with the shared telemetry (span, metrics,
/// flight note) and stamps the wall time. Every public simulation entry
/// point funnels through here so both backends report identically.
pub(crate) fn observe(
    run: impl FnOnce() -> Result<SimResult, SimError>,
) -> Result<SimResult, SimError> {
    let sp = obs::span::enter("sim.run");
    let out = run();
    let wall_us = sp.end_us();
    obs::metrics::histogram("sim.us").observe(wall_us);
    match out {
        Ok(mut r) => {
            r.wall_us = wall_us;
            obs::metrics::counter("sim.runs").inc();
            obs::metrics::counter("sim.fired").add(r.fired);
            obs::metrics::histogram("sim.cycles").observe(r.cycles);
            obs::flight::note("sim.run", "ok", r.cycles as i64, r.fired as i64);
            Ok(r)
        }
        Err(e) => {
            obs::metrics::counter("sim.errors").inc();
            obs::flight::note("sim.run", "err", 0, 0);
            Err(e)
        }
    }
}

/// The event backend's raw entry point: no telemetry wrapper, no wall-time
/// stamp (see [`observe`]).
pub(crate) fn run_event(
    graph: &Graph,
    machine: &mut Machine,
    args: &[i64],
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    Executor::new(graph, machine, args, config).and_then(Executor::run)
}

/// Diagnostic: runs the graph and, on failure, returns a textual dump of
/// the stuck state alongside the error. The structured per-node blockage
/// report also travels *inside* [`SimError::Deadlock`] itself, so plain
/// [`simulate`] callers get the same information; this entry point adds
/// FIFO depths and token-generator credit state for debugging.
pub fn diagnose(
    graph: &Graph,
    machine: &mut Machine,
    args: &[i64],
    config: &SimConfig,
) -> Result<SimResult, (SimError, String)> {
    let t0 = std::time::Instant::now();
    let mut ex = Executor::new(graph, machine, args, config).map_err(|e| (e, String::new()))?;
    loop {
        match ex.step_once() {
            Ok(Some(mut r)) => {
                r.wall_us = t0.elapsed().as_micros() as u64;
                break Ok(r);
            }
            Ok(None) => continue,
            Err(e) => {
                use std::fmt::Write;
                let mut s = String::new();
                for b in ex.blocked_nodes() {
                    let lens: Vec<usize> = (0..ex.g.num_inputs(b.node))
                        .map(|p| ex.fifos.len(ex.flat.in_id(b.node, p as u16) as usize))
                        .collect();
                    let _ = writeln!(s, "{b}, fifo lens {lens:?}");
                }
                for (i, st) in ex.tokengen.iter().enumerate() {
                    let Some(st) = st else { continue };
                    let id = NodeId(i as u32);
                    let _ = writeln!(s, "{id} TK credits={} queued={:?}", st.credits, st.queue);
                }
                // Flight-recorder tail: the last firings before the stall,
                // oldest first, with cycle stamps — what the circuit was
                // doing when it stopped making progress.
                let tail = ex.recent_firings();
                let _ = writeln!(s, "recent firings (last {}, oldest first):", tail.len());
                for &(node, cycle) in &tail {
                    let id = NodeId(node);
                    let _ = writeln!(
                        s,
                        "  cycle {cycle}: {id} [{}]",
                        crate::profile::kind_label(ex.g.kind(id))
                    );
                }
                // With waveform capture on, show what actually moved on the
                // blocked nodes' input signals in the last 32 cycles —
                // usually enough to see which producer went quiet.
                if ex.waves_on {
                    let blocked: Vec<NodeId> = ex.blocked_nodes().iter().map(|b| b.node).collect();
                    s.push_str(&ex.wave.wave().tail_report(ex.g, &ex.flat, &blocked, ex.now, 32));
                }
                break Err((e, s));
            }
        }
    }
}

pub(crate) struct Executor<'a> {
    g: &'a Graph,
    /// Dense port ids + CSR consumer adjacency (see [`pegasus::flat`]):
    /// the hot loop never walks `Graph`'s per-node `Vec`s.
    flat: FlatPorts,
    machine: &'a mut Machine,
    config: &'a SimConfig,
    /// Per flat input port: FIFO of (global sequence, value), all ports in
    /// one slab.
    fifos: PortFifos,
    /// Sticky value of each flat input port's source, precomputed so the
    /// firing path never consults the graph's input tables.
    in_sticky: Vec<Option<i64>>,
    /// Producer node of each flat input port (`u32::MAX` if unconnected) —
    /// the node to wake when a pop frees channel space.
    in_src: Vec<u32>,
    /// Space reserved for in-flight deliveries, per flat input port.
    reserved: Vec<u32>,
    /// Latest scheduled delivery time per flat output port: deliveries on
    /// one edge must stay in FIFO order even when latencies vary (a
    /// nullified memory operation completes instantly; a cache miss takes
    /// dozens of cycles).
    out_horizon: Vec<u64>,
    /// Outstanding output slots per memory-node flat output port, in
    /// firing order: a `Real` slot is an LSQ request whose result has not
    /// been scheduled yet; `Null` slots are nullified-firing values
    /// waiting behind it (see [`Self::emit_mem_or_defer`]).
    mem_out: Vec<VecDeque<PendingOut>>,
    /// Sticky (run-time constant) value of each node's output 0.
    sticky: Vec<Option<i64>>,
    /// Nodes with all-sticky inputs: they fire exactly once.
    once_only: Vec<bool>,
    has_fired: Vec<bool>,
    /// Pending deliveries/releases, bucketed by cycle.
    events: EventQueue,
    /// Nodes to re-examine this cycle.
    dirty: VecDeque<NodeId>,
    in_dirty: Vec<bool>,
    /// Token-generator state, dense by node index (`None` elsewhere).
    tokengen: Vec<Option<TokenGenState>>,
    lsq_queue: VecDeque<MemRequest>,
    lsq_in_flight: u32,
    seq: u64,
    now: u64,
    fired: u64,
    deferrals: u64,
    result: Option<(Option<i64>, u64)>,
    /// Per-node profile, allocated only when `config.profile` is set.
    prof: Option<Vec<NodeProfile>>,
    /// Open stall window per node: (start cycle, cause). Only allocated
    /// when profiling.
    stall_since: Vec<Option<(u64, StallCause)>>,
    /// Recorded event stream, allocated only when `config.trace` is set.
    trace: Option<Vec<TraceEvent>>,
    /// Always-on flight ring of the most recent firings `(node, cycle)`,
    /// embedded in deadlock diagnoses. Two stores per firing.
    recent: Vec<(u32, u64)>,
    recent_next: usize,
    /// Is critical-path recording on? Gates every `crit` access.
    crit_on: bool,
    /// Critical-path recorder, stored inline so the instrumented hot path
    /// pays a field offset instead of a pointer chase. Built with zero
    /// capacity when recording is off, so the uninstrumented executor
    /// allocates nothing for it.
    crit: CritState,
    /// Is waveform capture on? Gates every `wave` access, same discipline
    /// as `crit_on`.
    waves_on: bool,
    /// Waveform recorder (zero capacity when off).
    wave: WaveState,
}

/// A deterministic checkpoint of an [`Executor`]'s complete run-time
/// state, including the memory image — everything that evolves during a
/// run. Taken every K cycles by the replay driver ([`crate::replay`]);
/// restoring one onto a fresh executor for the same (graph, args, config)
/// and re-stepping reproduces the original run bit-for-bit (the pinned
/// `(cycle, seq)` delivery order leaves no hidden scheduler state).
#[derive(Clone)]
pub(crate) struct ExecSnapshot {
    pub(crate) machine: Machine,
    fifos: PortFifos,
    reserved: Vec<u32>,
    out_horizon: Vec<u64>,
    mem_out: Vec<VecDeque<PendingOut>>,
    has_fired: Vec<bool>,
    events: EventQueue,
    dirty: VecDeque<NodeId>,
    in_dirty: Vec<bool>,
    tokengen: Vec<Option<TokenGenState>>,
    lsq_queue: VecDeque<MemRequest>,
    lsq_in_flight: u32,
    seq: u64,
    pub(crate) now: u64,
    pub(crate) fired: u64,
    deferrals: u64,
    result: Option<(Option<i64>, u64)>,
    prof: Option<Vec<NodeProfile>>,
    stall_since: Vec<Option<(u64, StallCause)>>,
    trace: Option<Vec<TraceEvent>>,
    recent: Vec<(u32, u64)>,
    recent_next: usize,
    crit: CritState,
    wave: WaveState,
}

impl ExecSnapshot {
    /// The waveform capture frozen in this checkpoint (complete history
    /// since cycle 0 — the capture travels with the snapshot).
    pub(crate) fn wave_ref(&self) -> &Wave {
        self.wave.wave()
    }
}

impl<'a> Executor<'a> {
    pub(crate) fn new(
        g: &'a Graph,
        machine: &'a mut Machine,
        args: &[i64],
        config: &'a SimConfig,
    ) -> Result<Self, SimError> {
        let n = g.len();
        let flat = FlatPorts::new(g);
        let fifos = PortFifos::new(flat.num_in_ports(), config.channel_capacity.max(1));
        // Sticky propagation over topological order.
        let mut sticky: Vec<Option<i64>> = vec![None; n];
        for id in pegasus::topo_order(g) {
            let v = match g.kind(id) {
                NodeKind::Const { value, ty } => Some(ty.normalize(*value)),
                NodeKind::Param { index, ty } => match args.get(*index) {
                    Some(v) => Some(ty.normalize(*v)),
                    None => return Err(SimError::MissingArgument { index: *index }),
                },
                NodeKind::Addr { obj } => Some(machine.obj_base(*obj) as i64),
                NodeKind::BinOp { op, ty } => {
                    let a = g.input(id, 0).and_then(|i| sticky_of(&sticky, i.src));
                    let b = g.input(id, 1).and_then(|i| sticky_of(&sticky, i.src));
                    match (a, b) {
                        (Some(a), Some(b)) => Some(op.eval(ty, a, b)),
                        _ => None,
                    }
                }
                NodeKind::UnOp { op, ty } => {
                    g.input(id, 0).and_then(|i| sticky_of(&sticky, i.src)).map(|a| op.eval(ty, a))
                }
                NodeKind::Cast { ty } => {
                    g.input(id, 0).and_then(|i| sticky_of(&sticky, i.src)).map(|a| ty.normalize(a))
                }
                NodeKind::Mux { ty } => {
                    let nin = g.num_inputs(id);
                    let mut vals = Vec::with_capacity(nin);
                    for p in 0..nin as u16 {
                        match g.input(id, p).and_then(|i| sticky_of(&sticky, i.src)) {
                            Some(v) => vals.push(v),
                            None => {
                                vals.clear();
                                break;
                            }
                        }
                    }
                    if vals.len() == nin && nin >= 2 {
                        let mut out = 0i64;
                        for k in 0..nin / 2 {
                            if vals[2 * k] != 0 {
                                out = ty.normalize(vals[2 * k + 1]);
                            }
                        }
                        Some(out)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            sticky[id.index()] = v;
        }
        // Dynamic nodes whose inputs are *all* sticky correspond to
        // operations of the entry hyperblock (executed exactly once): they
        // must fire once, not continuously.
        let mut once_only = vec![false; n];
        for id in g.live_ids() {
            if sticky[id.index()].is_some() {
                continue;
            }
            let nin = g.num_inputs(id);
            if nin == 0 {
                continue;
            }
            let all = (0..nin as u16).all(|p| {
                g.input(id, p).map(|i| sticky_of(&sticky, i.src).is_some()).unwrap_or(false)
            });
            once_only[id.index()] = all;
        }
        let mut tokengen: Vec<Option<TokenGenState>> = vec![None; n];
        for id in g.live_ids() {
            if let NodeKind::TokenGen { n } = g.kind(id) {
                tokengen[id.index()] = Some(TokenGenState {
                    credits: u64::from(*n),
                    queue: VecDeque::new(),
                    last_arrival: None,
                });
            }
        }
        let num_in = flat.num_in_ports();
        let num_out = flat.num_out_ports();
        // Flatten the input side: each flat port's sticky source value and
        // producer node, so `avail`/`pop_input` never walk the graph.
        let mut in_sticky: Vec<Option<i64>> = vec![None; num_in];
        let mut in_src: Vec<u32> = vec![u32::MAX; num_in];
        for id in g.ids() {
            for p in 0..g.num_inputs(id) as u16 {
                if let Some(i) = g.input(id, p) {
                    let fp = flat.in_id(id, p) as usize;
                    in_sticky[fp] = sticky_of(&sticky, i.src);
                    in_src[fp] = i.src.node.0;
                }
            }
        }
        // Critical-path recorder, with the per-output-port edge class
        // precomputed so delivery indexes a table instead of matching on
        // `NodeKind` (built here, before `flat` moves into the executor).
        let crit_on = config.critpath;
        let crit = if crit_on {
            let mut out_class = vec![EdgeClass::Data as u8; num_out];
            for id in g.ids() {
                let k = g.kind(id);
                for port in 0..k.num_outputs() {
                    out_class[flat.out_id(id, port) as usize] =
                        EdgeClass::of_vclass(k.output_class(port)) as u8;
                }
            }
            CritState::new(num_in, config.channel_capacity.max(1), out_class)
        } else {
            CritState::new(0, 1, Vec::new())
        };
        let mut ex = Executor {
            g,
            machine,
            config,
            fifos,
            in_sticky,
            in_src,
            reserved: vec![0; num_in],
            out_horizon: vec![0; num_out],
            mem_out: (0..num_out).map(|_| VecDeque::new()).collect(),
            flat,
            sticky,
            once_only,
            has_fired: vec![false; n],
            events: EventQueue::new(),
            dirty: VecDeque::new(),
            in_dirty: vec![false; n],
            tokengen,
            lsq_queue: VecDeque::new(),
            lsq_in_flight: 0,
            seq: 0,
            now: 0,
            fired: 0,
            deferrals: 0,
            result: None,
            prof: config.profile.then(|| vec![NodeProfile::default(); n]),
            stall_since: if config.profile { vec![None; n] } else { Vec::new() },
            trace: config.trace.then(Vec::new),
            recent: Vec::with_capacity(RECENT_CAP),
            recent_next: 0,
            crit_on,
            crit,
            waves_on: config.waves,
            wave: if config.waves { WaveState::new(num_out, num_in, n) } else { WaveState::off() },
        };
        // Kick off: initial tokens fire at cycle 0 (each is a root of the
        // last-arrival DAG); every node with only sticky inputs is
        // examined once.
        for id in g.live_ids() {
            match g.kind(id) {
                NodeKind::InitialToken => {
                    let fire = if ex.crit_on {
                        ex.crit.push_rec(id.0, NO_REC, EdgeClass::Token, 0)
                    } else {
                        NO_REC
                    };
                    ex.push_event(0, Ev::Deliver { node: id, port: 0, value: 1, fire })
                }
                _ => ex.mark_dirty(id),
            }
        }
        Ok(ex)
    }

    fn push_event(&mut self, t: u64, ev: Ev) {
        self.seq += 1;
        self.events.push(t, self.seq, ev);
    }

    fn mark_dirty(&mut self, id: NodeId) {
        if !self.in_dirty[id.index()] {
            self.in_dirty[id.index()] = true;
            self.dirty.push_back(id);
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        loop {
            match self.step_once() {
                Ok(Some(r)) => return Ok(r),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// One scheduler round: deliveries, LSQ issue, firing, time advance.
    /// Returns `Ok(Some(result))` on completion, `Ok(None)` to continue.
    pub(crate) fn step_once(&mut self) -> Result<Option<SimResult>, SimError> {
        {
            // 1. Deliver everything scheduled for `now`. Delivery never
            // schedules new same-cycle events (zero-latency emission calls
            // `deliver` directly), so one drain is exhaustive.
            let due = self.events.take_due(self.now);
            for &(_, _, ev) in &due {
                match ev {
                    Ev::Deliver { node, port, value, fire } => {
                        self.deliver(node, port, value, fire)
                    }
                    Ev::LsqRelease { level } => {
                        self.lsq_in_flight -= 1;
                        if self.crit_on {
                            self.crit.timeline.release(self.now, level);
                        }
                        if let Some(tr) = self.trace.as_mut() {
                            tr.push(TraceEvent::Lsq {
                                cycle: self.now,
                                in_flight: self.lsq_in_flight,
                                queued: self.lsq_queue.len() as u32,
                            });
                        }
                    }
                }
            }
            self.events.recycle(due);
            // 2. Issue LSQ requests for this cycle.
            self.lsq_issue();
            // 3. Fire ready nodes; zero-latency cascades iterate.
            let mut steps = 0usize;
            let step_cap = 64 * self.g.len() + 1024;
            while let Some(id) = self.dirty.pop_front() {
                self.in_dirty[id.index()] = false;
                self.try_fire(id);
                if self.result.is_some() {
                    break;
                }
                steps += 1;
                if steps > step_cap {
                    // Zero-latency spin guard: defer the rest of the
                    // cascade to the next cycle — and *count* it, so a
                    // livelocked circuit shows up in the stats instead of
                    // silently burning cycles.
                    self.deferrals += 1;
                    break;
                }
            }
            if let Some((ret, cycles)) = self.result {
                return Ok(Some(self.finish(ret, cycles)));
            }
            // 4. Advance time. The bucket scan in `next_time` only runs
            // when the circuit is quiescent and we must jump to the next
            // scheduled event; a busy circuit advances one cycle for free.
            let busy = !self.dirty.is_empty() || !self.lsq_queue.is_empty();
            let next = if busy {
                self.now + 1
            } else {
                match self.events.next_time() {
                    Some(t) => t.max(self.now + 1),
                    None => {
                        return Err(SimError::Deadlock {
                            cycle: self.now,
                            blocked: self.blocked_nodes(),
                        })
                    }
                }
            };
            if next > self.config.max_cycles {
                return Err(SimError::MaxCycles { limit: self.config.max_cycles });
            }
            self.now = next;
        }
        Ok(None)
    }

    /// Pushes `value` into the FIFO of every consumer of `(node, port)`.
    fn deliver(&mut self, node: NodeId, port: u16, value: i64, fire: u32) {
        self.seq += 1;
        let seq = self.seq;
        // Edge class once per delivery: a table lookup on the producing
        // flat output port (precomputed at init, no `NodeKind` match here).
        let crit_class = if self.crit_on {
            EdgeClass::from_u8(self.crit.out_class[self.flat.out_id(node, port) as usize])
        } else {
            EdgeClass::Data
        };
        if self.waves_on {
            self.wave.record_out(self.flat.out_id(node, port) as usize, self.now, value);
        }
        let (start, end) = self.flat.consumer_range(node, port);
        for i in start..end {
            let u = self.flat.consumer_at(i);
            let r = &mut self.reserved[u.dst_flat as usize];
            if *r > 0 {
                *r -= 1;
            }
            let at = self.fifos.push_back(u.dst_flat as usize, (seq, value));
            if self.crit_on {
                self.crit.channel_push(at, fire, self.now, crit_class);
            }
            if self.waves_on {
                self.wave.record_occ_push(u.dst_flat as usize, self.now);
            }
            self.mark_dirty(u.dst);
        }
        // The producer may be waiting for space that just got consumed
        // elsewhere; consumers of space changes are handled in `pop_input`.
    }

    /// Is input `port` of `id` available? (Unconnected ports have neither
    /// a sticky source nor deliveries, so they report unavailable.)
    fn avail(&self, id: NodeId, port: u16) -> bool {
        let fp = self.flat.in_id(id, port) as usize;
        self.in_sticky[fp].is_some() || !self.fifos.is_empty(fp)
    }

    /// Oldest sequence number waiting on input `port` (non-sticky only).
    fn front_seq(&self, id: NodeId, port: u16) -> Option<u64> {
        self.fifos.front(self.flat.in_id(id, port) as usize).map(|(s, _)| s)
    }

    /// Pops input `port` (no-op for sticky inputs), waking the producer.
    fn pop_input(&mut self, id: NodeId, port: u16) -> i64 {
        let fp = self.flat.in_id(id, port) as usize;
        if let Some(v) = self.in_sticky[fp] {
            return v;
        }
        let was_full =
            self.fifos.len(fp) + self.reserved[fp] as usize >= self.config.channel_capacity;
        let ((_, v), at) = self.fifos.pop_front(fp).expect("pop of available input");
        if self.crit_on {
            self.crit.pop_and_offer(at);
        }
        if self.waves_on {
            self.wave.record_occ_pop(fp, self.now);
        }
        // Wake the producer only on a full→non-full transition: a producer
        // can be space-blocked on this channel only if it was full, and
        // `space_for` rechecks every consumer when it retries.
        if was_full {
            self.mark_dirty(NodeId(self.in_src[fp]));
        }
        v
    }

    /// Do all consumers of output `port` of `id` have space for one value?
    fn space_for(&self, id: NodeId, port: u16) -> bool {
        for u in self.flat.consumers(id, port) {
            let len = self.fifos.len(u.dst_flat as usize);
            let res = self.reserved[u.dst_flat as usize] as usize;
            if len + res >= self.config.channel_capacity {
                return false;
            }
        }
        true
    }

    /// Reserves one slot in every consumer of `(id, port)` (for deliveries
    /// that complete later).
    fn reserve(&mut self, id: NodeId, port: u16) {
        let (start, end) = self.flat.consumer_range(id, port);
        for i in start..end {
            let u = self.flat.consumer_at(i);
            self.reserved[u.dst_flat as usize] += 1;
        }
    }

    /// The current firing's critical-path record (`NO_REC` when recording
    /// is off). Call only after all of the firing's pops.
    #[inline]
    fn crit_fire_rec(&mut self) -> u32 {
        if self.crit_on {
            self.crit.fire_rec(self.now)
        } else {
            NO_REC
        }
    }

    /// Like [`Self::crit_fire_rec`], for one token-generator grant: a grant
    /// enabled purely by banked credits (nothing popped this call) chains
    /// to the generator's most recent absorb, and per-firing state is reset
    /// so each grant in a burst gets its own record.
    #[inline]
    fn crit_grant_rec(&mut self, id: NodeId) -> u32 {
        if !self.crit_on {
            return NO_REC;
        }
        if self.crit.best().is_none() {
            if let Some(b) = self.tokengen[id.index()].as_ref().and_then(|st| st.last_arrival) {
                self.crit.seed_best(b);
            }
        }
        let r = self.crit.fire_rec(self.now);
        self.crit.begin_fire(id.0);
        r
    }

    /// Emits synchronously (zero latency): consumers see the value in this
    /// same cycle.
    fn emit_now(&mut self, id: NodeId, port: u16, value: i64, fire: u32) {
        self.deliver(id, port, value, fire);
    }

    /// Emits after `lat` cycles, reserving consumer space.
    fn emit_later(&mut self, id: NodeId, port: u16, value: i64, lat: u64, fire: u32) {
        self.reserve(id, port);
        self.push_event(self.now + lat, Ev::Deliver { node: id, port, value, fire });
    }

    /// Schedules a delivery no earlier than any previously scheduled
    /// delivery on the same output port (in-order channels). The caller
    /// reserves consumer space.
    fn emit_ordered(&mut self, id: NodeId, port: u16, value: i64, t: u64, fire: u32) {
        let h = &mut self.out_horizon[self.flat.out_id(id, port) as usize];
        let t2 = t.max(*h);
        *h = t2;
        self.push_event(t2, Ev::Deliver { node: id, port, value, fire });
    }

    /// Emission path for a *nullified* memory operation's outputs. The
    /// horizon alone is not enough to keep the channel in FIFO order: a
    /// predicate-true firing only *queues* an LSQ request, and its result
    /// stamps the horizon at issue time — after a same-cycle nullified
    /// firing would already have scheduled its instant value. So when real
    /// requests are outstanding on this port, the nullified value queues
    /// behind them and is flushed by [`Self::complete_mem`].
    fn emit_mem_or_defer(&mut self, id: NodeId, port: u16, value: i64, fire: u32) {
        let q = &mut self.mem_out[self.flat.out_id(id, port) as usize];
        if q.is_empty() {
            self.emit_ordered(id, port, value, self.now, fire);
        } else {
            q.push_back(PendingOut::Null(value, fire));
        }
    }

    /// Records that a predicate-true firing of `(id, port)` has a queued
    /// LSQ request whose output slot must be filled before any later
    /// nullified value on the same port.
    fn expect_mem_result(&mut self, id: NodeId, port: u16) {
        self.mem_out[self.flat.out_id(id, port) as usize].push_back(PendingOut::Real);
    }

    /// Delivers a completed memory access's output: fills the oldest
    /// outstanding `Real` slot, then flushes nullified values queued
    /// behind it (the LSQ issues one node's requests in firing order, so
    /// slots complete front-to-back).
    fn complete_mem(&mut self, id: NodeId, port: u16, value: i64, t: u64, fire: u32) {
        let idx = self.flat.out_id(id, port) as usize;
        let front = self.mem_out[idx].pop_front();
        debug_assert!(matches!(front, Some(PendingOut::Real)), "slot order broken");
        self.emit_ordered(id, port, value, t, fire);
        while let Some(&PendingOut::Null(v, f)) = self.mem_out[idx].front() {
            self.mem_out[idx].pop_front();
            self.emit_ordered(id, port, v, self.now, f);
        }
    }

    /// Builds the final [`SimResult`], closing open stall windows and
    /// packaging the profile/trace when enabled.
    fn finish(&mut self, ret: Option<i64>, cycles: u64) -> SimResult {
        let profile = self.prof.take().map(|mut nodes| {
            for (i, open) in self.stall_since.iter_mut().enumerate() {
                if let Some((start, cause)) = open.take() {
                    nodes[i].add_stall(cause, cycles.saturating_sub(start));
                }
            }
            SimProfile { nodes, cycles }
        });
        let trace = self.trace.take().map(|events| Trace { events });
        let crit = self.crit_on.then(|| {
            self.crit.timeline.finish(cycles);
            critpath::summarize(&self.crit, self.g)
        });
        let waves = self.waves_on.then(|| std::mem::take(&mut self.wave).into_wave(cycles));
        SimResult {
            ret,
            cycles,
            stats: self.machine.stats.clone(),
            fired: self.fired,
            deferrals: self.deferrals,
            wall_us: 0, // stamped by the public entry points
            backend: BackendKind::Event.label(),
            profile,
            trace,
            crit,
            waves,
        }
    }

    /// Current simulated cycle (for the replay driver).
    pub(crate) fn now(&self) -> u64 {
        self.now
    }

    /// The live waveform capture (for replay breakpoint evaluation).
    pub(crate) fn wave_ref(&self) -> &Wave {
        self.wave.wave()
    }

    /// Clones every piece of run-time state into a restorable checkpoint.
    /// Static, rebuild-from-graph state (flat ports, sticky tables,
    /// once-only sets) is deliberately excluded: [`Self::restore`] is
    /// applied to a freshly constructed executor for the same
    /// (graph, args, config), which recomputes it deterministically.
    pub(crate) fn snapshot(&self) -> ExecSnapshot {
        ExecSnapshot {
            machine: self.machine.clone(),
            fifos: self.fifos.clone(),
            reserved: self.reserved.clone(),
            out_horizon: self.out_horizon.clone(),
            mem_out: self.mem_out.clone(),
            has_fired: self.has_fired.clone(),
            events: self.events.clone(),
            dirty: self.dirty.clone(),
            in_dirty: self.in_dirty.clone(),
            tokengen: self.tokengen.clone(),
            lsq_queue: self.lsq_queue.clone(),
            lsq_in_flight: self.lsq_in_flight,
            seq: self.seq,
            now: self.now,
            fired: self.fired,
            deferrals: self.deferrals,
            result: self.result,
            prof: self.prof.clone(),
            stall_since: self.stall_since.clone(),
            trace: self.trace.clone(),
            recent: self.recent.clone(),
            recent_next: self.recent_next,
            crit: self.crit.clone(),
            wave: self.wave.clone(),
        }
    }

    /// Overwrites this executor's run-time state with a checkpoint taken
    /// by [`Self::snapshot`] on an executor for the same (graph, args,
    /// config). Because delivery order is pinned by `(cycle, seq)` and the
    /// snapshot carries `seq`, re-execution from here is bit-identical to
    /// the original run — the invariant the replay debugger rests on.
    pub(crate) fn restore(&mut self, s: &ExecSnapshot) {
        *self.machine = s.machine.clone();
        self.fifos = s.fifos.clone();
        self.reserved = s.reserved.clone();
        self.out_horizon = s.out_horizon.clone();
        self.mem_out = s.mem_out.clone();
        self.has_fired = s.has_fired.clone();
        self.events = s.events.clone();
        self.dirty = s.dirty.clone();
        self.in_dirty = s.in_dirty.clone();
        self.tokengen = s.tokengen.clone();
        self.lsq_queue = s.lsq_queue.clone();
        self.lsq_in_flight = s.lsq_in_flight;
        self.seq = s.seq;
        self.now = s.now;
        self.fired = s.fired;
        self.deferrals = s.deferrals;
        self.result = s.result;
        self.prof = s.prof.clone();
        self.stall_since = s.stall_since.clone();
        self.trace = s.trace.clone();
        self.recent = s.recent.clone();
        self.recent_next = s.recent_next;
        self.crit = s.crit.clone();
        self.wave = s.wave.clone();
    }

    /// Every node that holds partial inputs (or is ready but blocked on
    /// output space): the deadlock report. Nodes in their quiescent state —
    /// no values queued anywhere — are not "blocked", they are done.
    /// The recent-firings ring, oldest first.
    fn recent_firings(&self) -> Vec<(u32, u64)> {
        let n = self.recent.len();
        if n < RECENT_CAP {
            return self.recent.clone();
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.recent[(self.recent_next + i) % n]);
        }
        out
    }

    fn blocked_nodes(&self) -> Vec<BlockedNode> {
        let mut out = Vec::new();
        for id in self.g.live_ids() {
            if self.sticky[id.index()].is_some()
                || (self.once_only[id.index()] && self.has_fired[id.index()])
            {
                continue;
            }
            let nin = self.g.num_inputs(id);
            if nin == 0 {
                continue;
            }
            let mut have = Vec::new();
            let mut missing = Vec::new();
            let mut queued = false;
            for p in 0..nin as u16 {
                if self.avail(id, p) {
                    have.push(p);
                    queued |= !self.fifos.is_empty(self.flat.in_id(id, p) as usize);
                } else {
                    missing.push((p, self.g.kind(id).input_class(p)));
                }
            }
            // Partially supplied (anything available — a queued value or a
            // sticky source — while something is missing), or fully ready
            // yet unable to fire (output space). Sticky availability
            // counts here, unlike in stall profiling: in a deadlock the
            // circuit is permanently stuck, so a node waiting next to a
            // forever-valid constant is exactly what to report.
            if (!have.is_empty() && !missing.is_empty()) || (missing.is_empty() && queued) {
                out.push(BlockedNode {
                    node: id,
                    op: kind_label(self.g.kind(id)),
                    hb: self.g.hb(id),
                    have,
                    missing,
                });
            }
        }
        out
    }

    /// Classifies why `id` could not fire just now, or `None` if it is
    /// simply idle. Attribution picks the first missing input port — an
    /// approximation for variadic joins, exact for fixed-arity operators.
    fn classify_stall(&self, id: NodeId) -> Option<StallCause> {
        if self.sticky[id.index()].is_some()
            || (self.once_only[id.index()] && self.has_fired[id.index()])
        {
            return None;
        }
        let nin = self.g.num_inputs(id);
        if nin == 0 {
            return None;
        }
        let mut queued = false;
        let mut missing = None;
        for p in 0..nin as u16 {
            if self.avail(id, p) {
                queued |= !self.fifos.is_empty(self.flat.in_id(id, p) as usize);
            } else if missing.is_none() {
                missing = Some(p);
            }
        }
        match missing {
            Some(p) => {
                if !queued {
                    return None; // nothing has arrived: idle, not stalled
                }
                Some(match self.g.kind(id).input_class(p) {
                    VClass::Data => StallCause::DataInput,
                    VClass::Pred => StallCause::PredInput,
                    VClass::Token => StallCause::TokenInput,
                })
            }
            None if queued => Some(StallCause::OutputSpace),
            None => None,
        }
    }

    /// Profiling bookkeeping for a successful firing of `id`.
    fn note_fire(&mut self, id: NodeId) {
        let now = self.now;
        let prof = self.prof.as_mut().expect("note_fire only when profiling");
        let p = &mut prof[id.index()];
        p.fires += 1;
        if p.first_fire.is_none() {
            p.first_fire = Some(now);
        }
        p.last_fire = Some(now);
        if let Some((start, cause)) = self.stall_since[id.index()].take() {
            p.add_stall(cause, now.saturating_sub(start));
        }
    }

    /// Profiling bookkeeping for a failed firing attempt: opens a stall
    /// window (once) attributed to whatever is holding the node up.
    fn note_stall(&mut self, id: NodeId) {
        if self.stall_since[id.index()].is_some() {
            return;
        }
        if let Some(cause) = self.classify_stall(id) {
            self.stall_since[id.index()] = Some((self.now, cause));
        }
    }

    fn try_fire(&mut self, id: NodeId) {
        // Loop: a node may be able to fire several times per cycle when
        // multiple waves are queued; we fire at most a few to let others go.
        for _ in 0..4 {
            if !self.fire_once(id) {
                if self.prof.is_some() {
                    self.note_stall(id);
                }
                if self.waves_on {
                    let code = stall_code(self.classify_stall(id));
                    self.wave.record_stall(id.index(), self.now, code);
                }
                return;
            }
            self.fired += 1;
            self.has_fired[id.index()] = true;
            if self.recent.len() < RECENT_CAP {
                self.recent.push((id.0, self.now));
            } else {
                self.recent[self.recent_next] = (id.0, self.now);
            }
            self.recent_next = (self.recent_next + 1) % RECENT_CAP;
            if self.prof.is_some() {
                self.note_fire(id);
            }
            if self.waves_on {
                self.wave.record_fire(id.index(), self.now);
                self.wave.record_stall(id.index(), self.now, 0);
            }
            if let Some(tr) = self.trace.as_mut() {
                tr.push(TraceEvent::Fire { node: id, cycle: self.now });
            }
        }
        // Still more queued? Come back later this cycle.
        self.mark_dirty(id);
    }

    /// Attempts one firing; returns whether it fired.
    fn fire_once(&mut self, id: NodeId) -> bool {
        if self.sticky[id.index()].is_some() {
            return false; // sticky nodes never fire dynamically
        }
        if self.once_only[id.index()] && self.has_fired[id.index()] {
            return false; // entry-hyperblock op: one execution only
        }
        if self.crit_on {
            self.crit.begin_fire(id.0);
        }
        // Copy the graph reference out of `self` so matching on the node
        // kind borrows the graph (which outlives this call), not `self` —
        // no per-firing `NodeKind` clone.
        let g = self.g;
        match g.kind(id) {
            NodeKind::Removed
            | NodeKind::Const { .. }
            | NodeKind::Param { .. }
            | NodeKind::Addr { .. }
            | NodeKind::InitialToken => false,
            NodeKind::BinOp { op, ty } => {
                if !(self.avail(id, 0) && self.avail(id, 1) && self.space_for(id, 0)) {
                    return false;
                }
                let a = self.pop_input(id, 0);
                let b = self.pop_input(id, 1);
                let v = op.eval(ty, a, b);
                let fr = self.crit_fire_rec();
                self.emit_later(id, 0, v, alu_latency(*op), fr);
                true
            }
            NodeKind::UnOp { op, ty } => {
                if !(self.avail(id, 0) && self.space_for(id, 0)) {
                    return false;
                }
                let a = self.pop_input(id, 0);
                let fr = self.crit_fire_rec();
                self.emit_later(id, 0, op.eval(ty, a), 1, fr);
                true
            }
            NodeKind::Cast { ty } => {
                if !(self.avail(id, 0) && self.space_for(id, 0)) {
                    return false;
                }
                let a = self.pop_input(id, 0);
                let fr = self.crit_fire_rec();
                self.emit_now(id, 0, ty.normalize(a), fr);
                true
            }
            NodeKind::Mux { ty } => {
                let nin = self.g.num_inputs(id);
                for p in 0..nin {
                    if !self.avail(id, p as u16) {
                        return false;
                    }
                }
                if !self.space_for(id, 0) {
                    return false;
                }
                // Exactly one predicate is true in a well-formed program;
                // the last true one wins otherwise.
                let mut out = 0i64;
                for k in 0..nin / 2 {
                    let p = self.pop_input(id, (2 * k) as u16);
                    let v = self.pop_input(id, (2 * k + 1) as u16);
                    if p != 0 {
                        out = ty.normalize(v);
                    }
                }
                let fr = self.crit_fire_rec();
                self.emit_now(id, 0, out, fr);
                true
            }
            NodeKind::Merge { .. } => {
                if !self.space_for(id, 0) {
                    return false;
                }
                // Pop the globally oldest waiting input.
                let nin = self.g.num_inputs(id);
                let mut best: Option<(u64, u16)> = None;
                for p in 0..nin as u16 {
                    if let Some(s) = self.front_seq(id, p) {
                        if best.map(|(bs, _)| s < bs).unwrap_or(true) {
                            best = Some((s, p));
                        }
                    }
                }
                match best {
                    Some((_, p)) => {
                        let v = self.pop_input(id, p);
                        let fr = self.crit_fire_rec();
                        self.emit_now(id, 0, v, fr);
                        true
                    }
                    None => false,
                }
            }
            NodeKind::Eta { .. } => {
                if !(self.avail(id, 0) && self.avail(id, 1) && self.space_for(id, 0)) {
                    return false;
                }
                let v = self.pop_input(id, 0);
                let p = self.pop_input(id, 1);
                if self.waves_on {
                    self.wave.record_pred(id.index(), self.now, p != 0);
                }
                if p != 0 {
                    let fr = self.crit_fire_rec();
                    self.emit_now(id, 0, v, fr);
                }
                true
            }
            NodeKind::Combine => {
                let nin = self.g.num_inputs(id);
                for p in 0..nin as u16 {
                    if !self.avail(id, p) {
                        return false;
                    }
                }
                if !self.space_for(id, 0) {
                    return false;
                }
                for p in 0..nin as u16 {
                    self.pop_input(id, p);
                }
                let fr = self.crit_fire_rec();
                self.emit_now(id, 0, 1, fr);
                true
            }
            NodeKind::TokenGen { .. } => self.fire_tokengen(id),
            NodeKind::Load { ty, .. } => {
                if !(self.avail(id, 0)
                    && self.avail(id, 1)
                    && self.avail(id, 2)
                    && self.space_for(id, 0)
                    && self.space_for(id, 1))
                {
                    return false;
                }
                let addr = self.pop_input(id, 0) as u64;
                let pred = self.pop_input(id, 1);
                self.pop_input(id, 2); // token
                if self.waves_on {
                    self.wave.record_pred(id.index(), self.now, pred != 0);
                }
                let fr = self.crit_fire_rec();
                self.reserve(id, 0);
                self.reserve(id, 1);
                if pred == 0 {
                    // Nullified: arbitrary value, instant token (§3.1) —
                    // but never overtaking earlier in-flight results.
                    self.emit_mem_or_defer(id, 0, 0, fr);
                    self.emit_mem_or_defer(id, 1, 1, fr);
                } else {
                    self.expect_mem_result(id, 0);
                    self.expect_mem_result(id, 1);
                    self.lsq_queue.push_back(MemRequest {
                        node: id,
                        addr,
                        value: 0,
                        is_store: false,
                        enqueued: self.now,
                        fire: fr,
                    });
                    let _ = ty;
                }
                true
            }
            NodeKind::Store { .. } => {
                if !(self.avail(id, 0)
                    && self.avail(id, 1)
                    && self.avail(id, 2)
                    && self.avail(id, 3)
                    && self.space_for(id, 0))
                {
                    return false;
                }
                let addr = self.pop_input(id, 0) as u64;
                let value = self.pop_input(id, 1);
                let pred = self.pop_input(id, 2);
                self.pop_input(id, 3); // token
                if self.waves_on {
                    self.wave.record_pred(id.index(), self.now, pred != 0);
                }
                let fr = self.crit_fire_rec();
                self.reserve(id, 0);
                if pred == 0 {
                    self.emit_mem_or_defer(id, 0, 1, fr);
                } else {
                    self.expect_mem_result(id, 0);
                    self.lsq_queue.push_back(MemRequest {
                        node: id,
                        addr,
                        value,
                        is_store: true,
                        enqueued: self.now,
                        fire: fr,
                    });
                }
                true
            }
            NodeKind::Return { has_value, .. } => {
                let has_value = *has_value;
                let need = if has_value { 3 } else { 2 };
                for p in 0..need {
                    if !self.avail(id, p) {
                        return false;
                    }
                }
                let pred = self.pop_input(id, 0);
                self.pop_input(id, 1);
                let v = if has_value { Some(self.pop_input(id, 2)) } else { None };
                if self.waves_on {
                    self.wave.record_pred(id.index(), self.now, pred != 0);
                }
                if pred != 0 {
                    if self.crit_on {
                        let fr = self.crit.fire_rec(self.now);
                        self.crit.ret_rec = Some(fr);
                    }
                    self.result = Some((if has_value { v } else { None }, self.now));
                }
                true
            }
        }
    }

    fn fire_tokengen(&mut self, id: NodeId) -> bool {
        let mut progressed = false;
        // Absorb every available input in arrival order: predicates queue
        // up for grants, returned tokens add credits.
        loop {
            let pred_seq = self.front_seq(id, 0);
            let tok_seq = self.front_seq(id, 1);
            let pick = match (pred_seq, tok_seq) {
                (None, None) => break,
                (Some(_), None) => 0u16,
                (None, Some(_)) => 1u16,
                (Some(a), Some(b)) => {
                    if a < b {
                        0
                    } else {
                        1
                    }
                }
            };
            if pick == 0 {
                let p = self.pop_input(id, 0);
                let st = self.tokengen[id.index()].as_mut().expect("tokengen state");
                st.queue.push_back(p != 0);
            } else {
                self.pop_input(id, 1);
                let st = self.tokengen[id.index()].as_mut().expect("tokengen state");
                st.credits += 1;
            }
            progressed = true;
        }
        // Remember the newest absorb so credit-banked grants in later
        // calls still chain into the path instead of becoming roots.
        if self.crit_on {
            if let Some(b) = self.crit.best() {
                if let Some(st) = self.tokengen[id.index()].as_mut() {
                    st.last_arrival = Some(b);
                }
            }
        }
        // Emit grants in order while credits (or free exit grants) allow
        // and the consumers have space.
        loop {
            let st = self.tokengen[id.index()].as_mut().expect("tokengen state");
            let Some(&needs_credit) = st.queue.front() else { break };
            if needs_credit && st.credits == 0 {
                break;
            }
            if !self.space_for(id, 0) {
                break;
            }
            let st = self.tokengen[id.index()].as_mut().expect("tokengen state");
            if needs_credit {
                st.credits -= 1;
            }
            st.queue.pop_front();
            let fr = self.crit_grant_rec(id);
            self.emit_now(id, 0, 1, fr);
            progressed = true;
        }
        progressed
    }

    /// Issues queued memory requests subject to ports and LSQ size.
    fn lsq_issue(&mut self) {
        let g = self.g;
        let mut issued = 0;
        while issued < self.config.lsq_ports
            && self.lsq_in_flight < self.config.lsq_size
            && !self.lsq_queue.is_empty()
        {
            let req = self.lsq_queue.pop_front().expect("nonempty queue");
            let snap = (
                self.machine.stats.l1_misses,
                self.machine.stats.l2_misses,
                self.machine.stats.tlb_misses,
            );
            let lat = self.machine.access_cycles(req.addr, req.is_store);
            // Where in the hierarchy did the access land? Recovered from
            // the stats delta: 0 = L1 (or perfect memory), 1 = L2,
            // 2 = DRAM. A TLB miss counts as a miss at its level.
            let missed =
                self.machine.stats.l1_misses != snap.0 || self.machine.stats.tlb_misses != snap.2;
            let level: u8 = if self.machine.stats.l1_misses == snap.0 {
                0
            } else if self.machine.stats.l2_misses == snap.1 {
                1
            } else {
                2
            };
            if let Some(prof) = self.prof.as_mut() {
                // Port contention: cycles the request sat queued.
                prof[req.node.index()]
                    .add_stall(StallCause::LsqPort, self.now.saturating_sub(req.enqueued));
            }
            // An LSQ-order self-edge when the request sat queued behind
            // ports/occupancy: the wait is the LSQ's fault, not the input's.
            let mut fire = req.fire;
            if self.crit_on {
                self.crit.timeline.issue(self.now, level);
                if self.now > req.enqueued {
                    fire = self.crit.push_rec(req.node.0, fire, EdgeClass::LsqOrder, self.now);
                }
            }
            if req.is_store {
                let ty = match g.kind(req.node) {
                    NodeKind::Store { ty, .. } => ty,
                    _ => unreachable!("store request from non-store"),
                };
                self.machine.store(req.addr, ty, req.value);
                // Token as soon as the store is ordered (§3.2: "the token
                // can be generated before memory has been updated"). The
                // store's memory latency is deliberately absent from the
                // path: nothing downstream waits on the write completing.
                let ft = if self.crit_on {
                    self.crit.push_rec(req.node.0, fire, EdgeClass::Token, self.now + 1)
                } else {
                    fire
                };
                self.complete_mem(req.node, 0, 1, self.now + 1, ft);
            } else {
                let ty = match g.kind(req.node) {
                    NodeKind::Load { ty, .. } => ty,
                    _ => unreachable!("load request from non-load"),
                };
                let v = self.machine.load(req.addr, ty);
                // Value when the access completes (a memory-latency
                // self-edge, split hit vs. miss); token once ordered.
                let (fv, ft) = if self.crit_on {
                    let cls = if missed { EdgeClass::CacheMiss } else { EdgeClass::MemLat };
                    (
                        self.crit.push_rec(req.node.0, fire, cls, self.now + lat),
                        self.crit.push_rec(req.node.0, fire, EdgeClass::Token, self.now + 1),
                    )
                } else {
                    (fire, fire)
                };
                self.complete_mem(req.node, 0, v, self.now + lat, fv);
                self.complete_mem(req.node, 1, 1, self.now + 1, ft);
            }
            self.lsq_in_flight += 1;
            self.push_event(self.now + lat, Ev::LsqRelease { level });
            if let Some(tr) = self.trace.as_mut() {
                tr.push(TraceEvent::Mem {
                    node: req.node,
                    cycle: self.now,
                    latency: lat,
                    addr: req.addr,
                    is_store: req.is_store,
                });
                tr.push(TraceEvent::Lsq {
                    cycle: self.now,
                    in_flight: self.lsq_in_flight,
                    queued: self.lsq_queue.len() as u32,
                });
            }
            issued += 1;
        }
    }
}

fn sticky_of(sticky: &[Option<i64>], src: Src) -> Option<i64> {
    if src.port == 0 {
        sticky[src.node.index()]
    } else {
        None
    }
}

pub(crate) fn alu_latency(op: BinOp) -> u64 {
    match op {
        BinOp::Mul => 3,
        BinOp::Div | BinOp::Rem => 20,
        _ => 1,
    }
}

/// Normalization helper for tests.
#[doc(hidden)]
pub fn normalize(ty: &Type, v: i64) -> i64 {
    ty.normalize(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfgir::objects::{MemObject, ObjectSet};
    use cfgir::Module;

    fn one_cell_module(init: i64) -> (Module, u64) {
        let mut m = Module::new();
        m.add_object(MemObject::global("a", Type::int(32), 1).with_init(vec![init]));
        (m, 0x1000) // first object lands at BASE_ADDR
    }

    fn perfect(latency: u64) -> SimConfig {
        SimConfig {
            mem: MemSystem::Perfect { latency },
            max_cycles: 10_000,
            ..SimConfig::default()
        }
    }

    /// store a[0] = 7 ; token-ordered load a[0] ; return it.
    fn store_then_load(store_pred: bool) -> (Module, Graph) {
        let (module, base) = one_cell_module(5);
        let mut g = Graph::new();
        let t = g.add_node(NodeKind::InitialToken, 0, 0);
        let ptrue = g.const_bool(true, 0);
        let sp = g.const_bool(store_pred, 0);
        let addr = g.add_node(NodeKind::Const { value: base as i64, ty: Type::int(64) }, 0, 0);
        let seven = g.add_node(NodeKind::Const { value: 7, ty: Type::int(32) }, 0, 0);
        let st = g.add_node(NodeKind::Store { ty: Type::int(32), may: ObjectSet::Top }, 4, 0);
        g.connect(Src::of(addr), st, 0);
        g.connect(Src::of(seven), st, 1);
        g.connect(Src::of(sp), st, 2);
        g.connect(Src::of(t), st, 3);
        let ld = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
        g.connect(Src::of(addr), ld, 0);
        g.connect(Src::of(ptrue), ld, 1);
        g.connect(Src::of(st), ld, 2); // the store's token orders the load
        let ret = g.add_node(NodeKind::Return { has_value: true, ty: Type::int(32) }, 3, 0);
        g.connect(Src::of(ptrue), ret, 0);
        g.connect(Src::token_of_load(ld), ret, 1);
        g.connect(Src::of(ld), ret, 2);
        (module, g)
    }

    #[test]
    fn token_ordered_load_sees_an_in_flight_store() {
        // §3.2 / §7.3: the store's token is generated as soon as the access
        // is ordered in the LSQ, not when it completes, and the dependent
        // load is forwarded the stored value. With a 40-cycle memory the
        // pair must finish in well under two full round trips.
        let (module, g) = store_then_load(true);
        let mut machine = Machine::new(&module, MemSystem::Perfect { latency: 40 });
        let r = simulate(&g, &mut machine, &[], &perfect(40)).unwrap();
        assert_eq!(r.ret, Some(7));
        assert_eq!(r.stats.stores, 1);
        assert_eq!(r.stats.loads, 1);
        assert!(r.cycles < 80, "no forwarding: {} cycles", r.cycles);
    }

    #[test]
    fn nullified_store_releases_its_token_without_touching_memory() {
        let (module, g) = store_then_load(false);
        let mut machine = Machine::new(&module, MemSystem::Perfect { latency: 2 });
        let r = simulate(&g, &mut machine, &[], &perfect(2)).unwrap();
        assert_eq!(r.ret, Some(5), "load must see the initial value");
        assert_eq!(r.stats.stores, 0, "nullified store must not access memory");
        assert_eq!(r.stats.loads, 1);
    }

    #[test]
    fn nullified_firing_does_not_overtake_an_in_flight_result() {
        // Regression test: a load fires twice on one wave — first with a
        // true predicate (a real, slow access), then with a false one (an
        // instant nullified result). Channel delivery must stay in firing
        // order: the consumer reads the real value first, not the filler.
        let mut module = Module::new();
        module.add_object(MemObject::global("a", Type::int(32), 1).with_init(vec![42]));
        module.add_object(MemObject::global("b", Type::int(32), 2).with_init(vec![1, 0]));
        let (base_a, base_b) = (0x1000i64, 0x1008i64);
        let mut g = Graph::new();
        let ptrue = g.const_bool(true, 0);
        let addr = g.add_node(NodeKind::Const { value: base_a, ty: Type::int(64) }, 0, 0);
        // Predicate sequence [1, 0] on one edge: two token-chained loads of
        // b[0]=1 and b[1]=0 (load results are never sticky, so they queue),
        // cast to bool, merged in completion order.
        let t0 = g.add_node(NodeKind::InitialToken, 0, 0);
        let ab0 = g.add_node(NodeKind::Const { value: base_b, ty: Type::int(64) }, 0, 0);
        let ab1 = g.add_node(NodeKind::Const { value: base_b + 4, ty: Type::int(64) }, 0, 0);
        let pl1 = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
        g.connect(Src::of(ab0), pl1, 0);
        g.connect(Src::of(ptrue), pl1, 1);
        g.connect(Src::of(t0), pl1, 2);
        let pl2 = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
        g.connect(Src::of(ab1), pl2, 0);
        g.connect(Src::of(ptrue), pl2, 1);
        g.connect(Src::token_of_load(pl1), pl2, 2); // pl1 completes first
        let c1 = g.add_node(NodeKind::Cast { ty: Type::Bool }, 1, 0);
        g.connect(Src::of(pl1), c1, 0);
        let c2 = g.add_node(NodeKind::Cast { ty: Type::Bool }, 1, 0);
        g.connect(Src::of(pl2), c2, 0);
        let pm = g.add_node(NodeKind::Merge { vc: VClass::Pred, ty: Type::Bool }, 2, 0);
        g.connect(Src::of(c1), pm, 0);
        g.connect(Src::of(c2), pm, 1);
        // Two wave tokens at once: both firings are enabled back to back.
        let t1 = g.add_node(NodeKind::InitialToken, 0, 0);
        let t2 = g.add_node(NodeKind::InitialToken, 0, 0);
        let tm = g.add_node(NodeKind::Merge { vc: VClass::Token, ty: Type::Void }, 2, 0);
        g.connect(Src::of(t1), tm, 0);
        g.connect(Src::of(t2), tm, 1);
        let ld = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
        g.connect(Src::of(addr), ld, 0);
        g.connect(Src::of(pm), ld, 1);
        g.connect(Src::of(tm), ld, 2);
        // The return rides the same predicate sequence: it must see the
        // real 42 on the true wave, not the nullified wave's filler. If
        // channel order broke, the filler 0 would pair with the true
        // predicate and become the result.
        let ret = g.add_node(NodeKind::Return { has_value: true, ty: Type::int(32) }, 3, 0);
        g.connect(Src::of(pm), ret, 0);
        g.connect(Src::token_of_load(ld), ret, 1);
        g.connect(Src::of(ld), ret, 2);

        let mut machine = Machine::new(&module, MemSystem::Perfect { latency: 10 });
        let r = simulate(&g, &mut machine, &[], &perfect(10)).unwrap();
        assert_eq!(r.ret, Some(42), "nullified filler overtook the real load result");
        assert_eq!(
            r.stats.loads, 3,
            "only the true-predicate firing of the main load accesses memory"
        );
    }

    #[test]
    fn simulation_stats_carry_the_cache_breakdown() {
        let (module, g) = store_then_load(true);
        let mem = MemSystem::Hierarchy(crate::memory::CacheParams::default());
        let mut machine = Machine::new(&module, mem.clone());
        let cfg = SimConfig { mem, max_cycles: 10_000, ..SimConfig::default() };
        let r = simulate(&g, &mut machine, &[], &cfg).unwrap();
        assert_eq!(r.ret, Some(7));
        // Cold store misses everywhere; the dependent load hits in L1.
        assert_eq!(r.stats.l1_misses, 1);
        assert_eq!(r.stats.l1_hits, 1);
        assert_eq!(r.stats.tlb_misses, 1);
        assert_eq!(r.stats.tlb_hits, 1);
    }
}
