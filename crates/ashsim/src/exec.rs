//! Self-timed execution of Pegasus circuits.
//!
//! The simulator implements the asynchronous-circuit semantics of §3.1:
//! every edge is a bounded FIFO channel ("wires with registers"), and a node
//! fires as soon as its required inputs are available and its consumers have
//! space — there is no program counter and no instruction issue. Loop
//! pipelining therefore *emerges*: multiple iterations flow through the
//! merge/eta rings concurrently, throttled only by data dependences, token
//! edges and channel capacity. Memory operations go through a load-store
//! queue with a configurable number of ports (§7.3).
//!
//! Functional determinism follows from Kahn-network discipline: each channel
//! delivers values in order, merges pop in global arrival order, and
//! run-time constants are modeled as always-available *sticky* sources.

use crate::memory::{Machine, MemStats, MemSystem};
use crate::profile::{kind_label, NodeProfile, SimProfile, StallCause};
use crate::trace::{Trace, TraceEvent};
use cfgir::types::{BinOp, Type};
use pegasus::{Graph, NodeId, NodeKind, Src, VClass};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The memory system timing model.
    pub mem: MemSystem,
    /// Memory operations that may issue per cycle (LSQ ports).
    pub lsq_ports: u32,
    /// Maximum memory operations in flight (LSQ size).
    pub lsq_size: u32,
    /// FIFO depth of every channel (hardware registers per wire).
    pub channel_capacity: usize,
    /// Hard cycle limit; exceeding it is an error.
    pub max_cycles: u64,
    /// Collect a per-node firing/stall profile ([`SimResult::profile`]).
    /// Off by default: the uninstrumented hot path pays only a branch.
    pub profile: bool,
    /// Record the event stream for Chrome-trace export
    /// ([`SimResult::trace`]). Substantially more memory than `profile`.
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mem: MemSystem::default(),
            lsq_ports: 2,
            lsq_size: 16,
            channel_capacity: 2,
            max_cycles: 200_000_000,
            profile: false,
            trace: false,
        }
    }
}

impl SimConfig {
    /// A perfect-memory configuration (useful for functional tests).
    pub fn perfect() -> Self {
        SimConfig { mem: MemSystem::Perfect { latency: 2 }, ..SimConfig::default() }
    }

    /// This configuration with profiling (and optionally tracing) enabled.
    pub fn with_observability(mut self, profile: bool, trace: bool) -> Self {
        self.profile = profile;
        self.trace = trace;
        self
    }
}

/// The outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The value returned (if the returning `Return` carried one).
    pub ret: Option<i64>,
    /// Cycle at which the program returned.
    pub cycles: u64,
    /// Memory statistics (dynamic loads/stores count only predicate-true
    /// accesses).
    pub stats: MemStats,
    /// Total node firings — a proxy for dynamic operation count.
    pub fired: u64,
    /// Per-node firing/stall profile ([`SimConfig::profile`]).
    pub profile: Option<SimProfile>,
    /// Recorded event stream ([`SimConfig::trace`]).
    pub trace: Option<Trace>,
}

impl SimResult {
    /// Serializes the aggregate simulation outcome in the shared
    /// `cash-stats-v1` JSON dialect (stable key order, no whitespace).
    /// Per-node profiles and traces are exported separately
    /// ([`SimProfile::to_json`], [`Trace::to_chrome_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ret\":{},\"cycles\":{},\"fired\":{},\"mem\":{}}}",
            self.ret.map_or("null".to_string(), |v| v.to_string()),
            self.cycles,
            self.fired,
            self.stats.to_json(),
        )
    }
}

/// One node that could not make progress when a deadlock was declared:
/// which input ports already held a value and which were still missing,
/// with the value class (data vs. predicate vs. token) of each missing
/// port. An empty `missing` list means the node was ready to fire but
/// blocked on consumer channel space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedNode {
    /// The stuck node.
    pub node: NodeId,
    /// Short operation label (e.g. `"load"`, `"eta"`).
    pub op: String,
    /// Input ports whose value had arrived.
    pub have: Vec<u16>,
    /// Input ports still waiting, with the class each carries.
    pub missing: Vec<(u16, VClass)>,
}

impl fmt::Display for BlockedNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.missing.is_empty() {
            return write!(f, "{}({}) ready but blocked on output space", self.node, self.op);
        }
        write!(f, "{}({}) waiting on", self.node, self.op)?;
        for (i, (port, class)) in self.missing.iter().enumerate() {
            let kind = match class {
                VClass::Data => "data",
                VClass::Pred => "pred",
                VClass::Token => "token",
            };
            write!(f, "{} {kind}@{port}", if i == 0 { "" } else { "," })?;
        }
        Ok(())
    }
}

/// Why a simulation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Nothing can fire, nothing is in flight, and no return has happened.
    /// `blocked` reports every node with partial inputs and what it was
    /// waiting for (see [`BlockedNode`]).
    Deadlock { cycle: u64, blocked: Vec<BlockedNode> },
    /// The cycle limit was reached (often an infinite source-level loop).
    MaxCycles { limit: u64 },
    /// A `Param` node had no corresponding argument.
    MissingArgument { index: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, blocked } => {
                write!(f, "dataflow deadlock at cycle {cycle}")?;
                if !blocked.is_empty() {
                    write!(f, " ({} blocked node(s):", blocked.len())?;
                    for b in blocked.iter().take(4) {
                        write!(f, " {b};")?;
                    }
                    if blocked.len() > 4 {
                        write!(f, " …")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            SimError::MaxCycles { limit } => write!(f, "exceeded {limit} simulated cycles"),
            SimError::MissingArgument { index } => {
                write!(f, "no argument supplied for parameter {index}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Runs `graph` on `machine` with the given arguments.
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate(
    graph: &Graph,
    machine: &mut Machine,
    args: &[i64],
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    Executor::new(graph, machine, args, config)?.run()
}

/// Diagnostic: runs the graph and, on failure, returns a textual dump of
/// the stuck state alongside the error. The structured per-node blockage
/// report also travels *inside* [`SimError::Deadlock`] itself, so plain
/// [`simulate`] callers get the same information; this entry point adds
/// FIFO depths and token-generator credit state for debugging.
pub fn diagnose(
    graph: &Graph,
    machine: &mut Machine,
    args: &[i64],
    config: &SimConfig,
) -> Result<SimResult, (SimError, String)> {
    let mut ex = Executor::new(graph, machine, args, config).map_err(|e| (e, String::new()))?;
    loop {
        match ex.step_once() {
            Ok(Some(r)) => break Ok(r),
            Ok(None) => continue,
            Err(e) => {
                use std::fmt::Write;
                let mut s = String::new();
                for b in ex.blocked_nodes() {
                    let lens: Vec<usize> = (0..ex.g.num_inputs(b.node))
                        .map(|p| ex.fifos[b.node.index()][p].len())
                        .collect();
                    let _ = writeln!(s, "{b}, fifo lens {lens:?}");
                }
                for (id, st) in &ex.tokengen {
                    let _ = writeln!(s, "{id} TK credits={} queued={:?}", st.credits, st.queue);
                }
                break Err((e, s));
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Deliver `value` from output `(node, port)` to all its consumers.
    Deliver { node: NodeId, port: u16, value: i64 },
    /// An LSQ slot frees up.
    LsqRelease,
}

#[derive(Debug, Clone, Copy)]
struct MemRequest {
    node: NodeId,
    addr: u64,
    value: i64, // store data
    is_store: bool,
    /// Cycle the request entered the LSQ queue (for port-stall profiling).
    enqueued: u64,
}

/// One outstanding output slot of a memory node (see `Executor::mem_out`).
enum PendingOut {
    /// A queued LSQ request will fill this slot when it issues.
    Real,
    /// A nullified firing's instant value, blocked behind a `Real` slot.
    Null(i64),
}

struct TokenGenState {
    credits: u64,
    /// Predicates seen but not yet granted, in arrival order. `true`
    /// entries need a credit; `false` entries (the loop's exit wave, whose
    /// operations are nullified) are granted for free so the consumer ring
    /// can drain — the paper's counter reset plays the same role for its
    /// fully-serialized loop model.
    queue: VecDeque<bool>,
}

struct Executor<'a> {
    g: &'a Graph,
    machine: &'a mut Machine,
    config: &'a SimConfig,
    /// Per node, per input port: FIFO of (global sequence, value).
    fifos: Vec<Vec<VecDeque<(u64, i64)>>>,
    /// Space reserved for in-flight deliveries, per (node, port).
    reserved: HashMap<(u32, u16), u32>,
    /// Latest scheduled delivery time per output port: deliveries on one
    /// edge must stay in FIFO order even when latencies vary (a nullified
    /// memory operation completes instantly; a cache miss takes dozens of
    /// cycles).
    out_horizon: HashMap<(u32, u16), u64>,
    /// Outstanding output slots per memory-node port, in firing order: a
    /// `Real` slot is an LSQ request whose result has not been scheduled
    /// yet; `Null` slots are nullified-firing values waiting behind it
    /// (see [`Self::emit_mem_or_defer`]).
    mem_out: HashMap<(u32, u16), VecDeque<PendingOut>>,
    /// Sticky (run-time constant) value of each node's output 0.
    sticky: Vec<Option<i64>>,
    /// Nodes with all-sticky inputs: they fire exactly once.
    once_only: Vec<bool>,
    has_fired: Vec<bool>,
    /// Event queue: (time, sequence, event).
    events: BinaryHeap<Reverse<(u64, u64, EvBox)>>,
    /// Nodes to re-examine this cycle.
    dirty: VecDeque<NodeId>,
    in_dirty: Vec<bool>,
    tokengen: HashMap<NodeId, TokenGenState>,
    lsq_queue: VecDeque<MemRequest>,
    lsq_in_flight: u32,
    seq: u64,
    now: u64,
    fired: u64,
    result: Option<(Option<i64>, u64)>,
    /// Per-node profile, allocated only when `config.profile` is set.
    prof: Option<Vec<NodeProfile>>,
    /// Open stall window per node: (start cycle, cause). Only allocated
    /// when profiling.
    stall_since: Vec<Option<(u64, StallCause)>>,
    /// Recorded event stream, allocated only when `config.trace` is set.
    trace: Option<Vec<TraceEvent>>,
}

/// Orderable wrapper so the heap can hold events (events are not `Ord`).
#[derive(Debug, Clone, Copy)]
struct EvBox(Ev);

impl PartialEq for EvBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for EvBox {}
impl PartialOrd for EvBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<'a> Executor<'a> {
    fn new(
        g: &'a Graph,
        machine: &'a mut Machine,
        args: &[i64],
        config: &'a SimConfig,
    ) -> Result<Self, SimError> {
        let n = g.len();
        let mut fifos = Vec::with_capacity(n);
        for id in g.ids() {
            let nin = if matches!(g.kind(id), NodeKind::Removed) { 0 } else { g.num_inputs(id) };
            fifos.push(vec![VecDeque::new(); nin]);
        }
        // Sticky propagation over topological order.
        let mut sticky: Vec<Option<i64>> = vec![None; n];
        for id in pegasus::topo_order(g) {
            let v = match g.kind(id) {
                NodeKind::Const { value, ty } => Some(ty.normalize(*value)),
                NodeKind::Param { index, ty } => match args.get(*index) {
                    Some(v) => Some(ty.normalize(*v)),
                    None => return Err(SimError::MissingArgument { index: *index }),
                },
                NodeKind::Addr { obj } => Some(machine.obj_base(*obj) as i64),
                NodeKind::BinOp { op, ty } => {
                    let a = g.input(id, 0).and_then(|i| sticky_of(&sticky, i.src));
                    let b = g.input(id, 1).and_then(|i| sticky_of(&sticky, i.src));
                    match (a, b) {
                        (Some(a), Some(b)) => Some(op.eval(ty, a, b)),
                        _ => None,
                    }
                }
                NodeKind::UnOp { op, ty } => {
                    g.input(id, 0).and_then(|i| sticky_of(&sticky, i.src)).map(|a| op.eval(ty, a))
                }
                NodeKind::Cast { ty } => {
                    g.input(id, 0).and_then(|i| sticky_of(&sticky, i.src)).map(|a| ty.normalize(a))
                }
                NodeKind::Mux { ty } => {
                    let nin = g.num_inputs(id);
                    let mut vals = Vec::with_capacity(nin);
                    for p in 0..nin as u16 {
                        match g.input(id, p).and_then(|i| sticky_of(&sticky, i.src)) {
                            Some(v) => vals.push(v),
                            None => {
                                vals.clear();
                                break;
                            }
                        }
                    }
                    if vals.len() == nin && nin >= 2 {
                        let mut out = 0i64;
                        for k in 0..nin / 2 {
                            if vals[2 * k] != 0 {
                                out = ty.normalize(vals[2 * k + 1]);
                            }
                        }
                        Some(out)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            sticky[id.index()] = v;
        }
        // Dynamic nodes whose inputs are *all* sticky correspond to
        // operations of the entry hyperblock (executed exactly once): they
        // must fire once, not continuously.
        let mut once_only = vec![false; n];
        for id in g.live_ids() {
            if sticky[id.index()].is_some() {
                continue;
            }
            let nin = g.num_inputs(id);
            if nin == 0 {
                continue;
            }
            let all = (0..nin as u16).all(|p| {
                g.input(id, p).map(|i| sticky_of(&sticky, i.src).is_some()).unwrap_or(false)
            });
            once_only[id.index()] = all;
        }
        let mut tokengen = HashMap::new();
        for id in g.live_ids() {
            if let NodeKind::TokenGen { n } = g.kind(id) {
                tokengen
                    .insert(id, TokenGenState { credits: u64::from(*n), queue: VecDeque::new() });
            }
        }
        let mut ex = Executor {
            g,
            machine,
            config,
            fifos,
            reserved: HashMap::new(),
            out_horizon: HashMap::new(),
            mem_out: HashMap::new(),
            sticky,
            once_only,
            has_fired: vec![false; n],
            events: BinaryHeap::new(),
            dirty: VecDeque::new(),
            in_dirty: vec![false; n],
            tokengen,
            lsq_queue: VecDeque::new(),
            lsq_in_flight: 0,
            seq: 0,
            now: 0,
            fired: 0,
            result: None,
            prof: config.profile.then(|| vec![NodeProfile::default(); n]),
            stall_since: if config.profile { vec![None; n] } else { Vec::new() },
            trace: config.trace.then(Vec::new),
        };
        // Kick off: initial tokens fire at cycle 0; every node with only
        // sticky inputs is examined once.
        for id in g.live_ids() {
            match g.kind(id) {
                NodeKind::InitialToken => {
                    ex.push_event(0, Ev::Deliver { node: id, port: 0, value: 1 })
                }
                _ => ex.mark_dirty(id),
            }
        }
        Ok(ex)
    }

    fn push_event(&mut self, t: u64, ev: Ev) {
        self.seq += 1;
        self.events.push(Reverse((t, self.seq, EvBox(ev))));
    }

    fn mark_dirty(&mut self, id: NodeId) {
        if !self.in_dirty[id.index()] {
            self.in_dirty[id.index()] = true;
            self.dirty.push_back(id);
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        loop {
            match self.step_once() {
                Ok(Some(r)) => return Ok(r),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// One scheduler round: deliveries, LSQ issue, firing, time advance.
    /// Returns `Ok(Some(result))` on completion, `Ok(None)` to continue.
    fn step_once(&mut self) -> Result<Option<SimResult>, SimError> {
        {
            // 1. Deliver everything scheduled for `now`.
            while let Some(Reverse((t, _, _))) = self.events.peek() {
                if *t > self.now {
                    break;
                }
                let Reverse((_, _, EvBox(ev))) = self.events.pop().expect("peeked");
                match ev {
                    Ev::Deliver { node, port, value } => self.deliver(node, port, value),
                    Ev::LsqRelease => {
                        self.lsq_in_flight -= 1;
                        if let Some(tr) = self.trace.as_mut() {
                            tr.push(TraceEvent::Lsq {
                                cycle: self.now,
                                in_flight: self.lsq_in_flight,
                                queued: self.lsq_queue.len() as u32,
                            });
                        }
                    }
                }
            }
            // 2. Issue LSQ requests for this cycle.
            self.lsq_issue();
            // 3. Fire ready nodes; zero-latency cascades iterate.
            let mut steps = 0usize;
            let step_cap = 64 * self.g.len() + 1024;
            while let Some(id) = self.dirty.pop_front() {
                self.in_dirty[id.index()] = false;
                self.try_fire(id);
                if self.result.is_some() {
                    break;
                }
                steps += 1;
                if steps > step_cap {
                    break; // zero-latency spin guard: defer to next cycle
                }
            }
            if let Some((ret, cycles)) = self.result {
                return Ok(Some(self.finish(ret, cycles)));
            }
            // 4. Advance time.
            let next_event = self.events.peek().map(|Reverse((t, _, _))| *t);
            let busy = !self.dirty.is_empty() || !self.lsq_queue.is_empty();
            let next = if busy {
                self.now + 1
            } else {
                match next_event {
                    Some(t) => t.max(self.now + 1),
                    None => {
                        return Err(SimError::Deadlock {
                            cycle: self.now,
                            blocked: self.blocked_nodes(),
                        })
                    }
                }
            };
            if next > self.config.max_cycles {
                return Err(SimError::MaxCycles { limit: self.config.max_cycles });
            }
            self.now = next;
        }
        Ok(None)
    }

    /// Pushes `value` into the FIFO of every consumer of `(node, port)`.
    fn deliver(&mut self, node: NodeId, port: u16, value: i64) {
        self.seq += 1;
        let seq = self.seq;
        let consumers: Vec<(NodeId, u16)> = self
            .g
            .uses(node)
            .iter()
            .filter(|u| u.src_port == port)
            .map(|u| (u.dst, u.dst_port))
            .collect();
        for (dst, dport) in consumers {
            if let Some(r) = self.reserved.get_mut(&(dst.0, dport)) {
                if *r > 0 {
                    *r -= 1;
                }
            }
            self.fifos[dst.index()][dport as usize].push_back((seq, value));
            self.mark_dirty(dst);
        }
        // The producer may be waiting for space that just got consumed
        // elsewhere; consumers of space changes are handled in `pop_input`.
    }

    /// Is input `port` of `id` available?
    fn avail(&self, id: NodeId, port: u16) -> bool {
        let inp = match self.g.input(id, port) {
            Some(i) => i,
            None => return false,
        };
        if sticky_of(&self.sticky, inp.src).is_some() {
            return true;
        }
        !self.fifos[id.index()][port as usize].is_empty()
    }

    /// Oldest sequence number waiting on input `port` (non-sticky only).
    fn front_seq(&self, id: NodeId, port: u16) -> Option<u64> {
        self.fifos[id.index()][port as usize].front().map(|&(s, _)| s)
    }

    /// Pops input `port` (no-op for sticky inputs), waking the producer.
    fn pop_input(&mut self, id: NodeId, port: u16) -> i64 {
        let inp = self.g.input(id, port).expect("pop of connected input");
        if let Some(v) = sticky_of(&self.sticky, inp.src) {
            return v;
        }
        let (_, v) =
            self.fifos[id.index()][port as usize].pop_front().expect("pop of available input");
        // Space freed: the producer might be blocked on it.
        self.mark_dirty(inp.src.node);
        v
    }

    /// Do all consumers of output `port` of `id` have space for one value?
    fn space_for(&self, id: NodeId, port: u16) -> bool {
        for u in self.g.uses(id) {
            if u.src_port != port {
                continue;
            }
            let len = self.fifos[u.dst.index()][u.dst_port as usize].len();
            let res = *self.reserved.get(&(u.dst.0, u.dst_port)).unwrap_or(&0) as usize;
            if len + res >= self.config.channel_capacity {
                return false;
            }
        }
        true
    }

    /// Reserves one slot in every consumer of `(id, port)` (for deliveries
    /// that complete later).
    fn reserve(&mut self, id: NodeId, port: u16) {
        for u in self.g.uses(id) {
            if u.src_port == port {
                *self.reserved.entry((u.dst.0, u.dst_port)).or_insert(0) += 1;
            }
        }
    }

    /// Emits synchronously (zero latency): consumers see the value in this
    /// same cycle.
    fn emit_now(&mut self, id: NodeId, port: u16, value: i64) {
        self.deliver(id, port, value);
    }

    /// Emits after `lat` cycles, reserving consumer space.
    fn emit_later(&mut self, id: NodeId, port: u16, value: i64, lat: u64) {
        self.reserve(id, port);
        self.push_event(self.now + lat, Ev::Deliver { node: id, port, value });
    }

    /// Schedules a delivery no earlier than any previously scheduled
    /// delivery on the same output port (in-order channels). The caller
    /// reserves consumer space.
    fn emit_ordered(&mut self, id: NodeId, port: u16, value: i64, t: u64) {
        let h = self.out_horizon.entry((id.0, port)).or_insert(0);
        let t2 = t.max(*h);
        *h = t2;
        self.push_event(t2, Ev::Deliver { node: id, port, value });
    }

    /// Emission path for a *nullified* memory operation's outputs. The
    /// horizon alone is not enough to keep the channel in FIFO order: a
    /// predicate-true firing only *queues* an LSQ request, and its result
    /// stamps the horizon at issue time — after a same-cycle nullified
    /// firing would already have scheduled its instant value. So when real
    /// requests are outstanding on this port, the nullified value queues
    /// behind them and is flushed by [`Self::complete_mem`].
    fn emit_mem_or_defer(&mut self, id: NodeId, port: u16, value: i64) {
        match self.mem_out.get_mut(&(id.0, port)) {
            Some(q) if !q.is_empty() => q.push_back(PendingOut::Null(value)),
            _ => self.emit_ordered(id, port, value, self.now),
        }
    }

    /// Records that a predicate-true firing of `(id, port)` has a queued
    /// LSQ request whose output slot must be filled before any later
    /// nullified value on the same port.
    fn expect_mem_result(&mut self, id: NodeId, port: u16) {
        self.mem_out.entry((id.0, port)).or_default().push_back(PendingOut::Real);
    }

    /// Delivers a completed memory access's output: fills the oldest
    /// outstanding `Real` slot, then flushes nullified values queued
    /// behind it (the LSQ issues one node's requests in firing order, so
    /// slots complete front-to-back).
    fn complete_mem(&mut self, id: NodeId, port: u16, value: i64, t: u64) {
        let q = self.mem_out.get_mut(&(id.0, port)).expect("completion without slot");
        let front = q.pop_front();
        debug_assert!(matches!(front, Some(PendingOut::Real)), "slot order broken");
        let mut flush = Vec::new();
        while let Some(&PendingOut::Null(v)) = q.front() {
            q.pop_front();
            flush.push(v);
        }
        self.emit_ordered(id, port, value, t);
        for v in flush {
            self.emit_ordered(id, port, v, self.now);
        }
    }

    /// Builds the final [`SimResult`], closing open stall windows and
    /// packaging the profile/trace when enabled.
    fn finish(&mut self, ret: Option<i64>, cycles: u64) -> SimResult {
        let profile = self.prof.take().map(|mut nodes| {
            for (i, open) in self.stall_since.iter_mut().enumerate() {
                if let Some((start, cause)) = open.take() {
                    nodes[i].add_stall(cause, cycles.saturating_sub(start));
                }
            }
            SimProfile { nodes, cycles }
        });
        let trace = self.trace.take().map(|events| Trace { events });
        SimResult {
            ret,
            cycles,
            stats: self.machine.stats.clone(),
            fired: self.fired,
            profile,
            trace,
        }
    }

    /// Every node that holds partial inputs (or is ready but blocked on
    /// output space): the deadlock report. Nodes in their quiescent state —
    /// no values queued anywhere — are not "blocked", they are done.
    fn blocked_nodes(&self) -> Vec<BlockedNode> {
        let mut out = Vec::new();
        for id in self.g.live_ids() {
            if self.sticky[id.index()].is_some()
                || (self.once_only[id.index()] && self.has_fired[id.index()])
            {
                continue;
            }
            let nin = self.g.num_inputs(id);
            if nin == 0 {
                continue;
            }
            let mut have = Vec::new();
            let mut missing = Vec::new();
            let mut queued = false;
            for p in 0..nin as u16 {
                if self.avail(id, p) {
                    have.push(p);
                    queued |= !self.fifos[id.index()][p as usize].is_empty();
                } else {
                    missing.push((p, self.g.kind(id).input_class(p)));
                }
            }
            // Partially supplied (anything available — a queued value or a
            // sticky source — while something is missing), or fully ready
            // yet unable to fire (output space). Sticky availability
            // counts here, unlike in stall profiling: in a deadlock the
            // circuit is permanently stuck, so a node waiting next to a
            // forever-valid constant is exactly what to report.
            if (!have.is_empty() && !missing.is_empty()) || (missing.is_empty() && queued) {
                out.push(BlockedNode { node: id, op: kind_label(self.g.kind(id)), have, missing });
            }
        }
        out
    }

    /// Classifies why `id` could not fire just now, or `None` if it is
    /// simply idle. Attribution picks the first missing input port — an
    /// approximation for variadic joins, exact for fixed-arity operators.
    fn classify_stall(&self, id: NodeId) -> Option<StallCause> {
        if self.sticky[id.index()].is_some()
            || (self.once_only[id.index()] && self.has_fired[id.index()])
        {
            return None;
        }
        let nin = self.g.num_inputs(id);
        if nin == 0 {
            return None;
        }
        let mut queued = false;
        let mut missing = None;
        for p in 0..nin as u16 {
            if self.avail(id, p) {
                queued |= !self.fifos[id.index()][p as usize].is_empty();
            } else if missing.is_none() {
                missing = Some(p);
            }
        }
        match missing {
            Some(p) => {
                if !queued {
                    return None; // nothing has arrived: idle, not stalled
                }
                Some(match self.g.kind(id).input_class(p) {
                    VClass::Data => StallCause::DataInput,
                    VClass::Pred => StallCause::PredInput,
                    VClass::Token => StallCause::TokenInput,
                })
            }
            None if queued => Some(StallCause::OutputSpace),
            None => None,
        }
    }

    /// Profiling bookkeeping for a successful firing of `id`.
    fn note_fire(&mut self, id: NodeId) {
        let now = self.now;
        let prof = self.prof.as_mut().expect("note_fire only when profiling");
        let p = &mut prof[id.index()];
        p.fires += 1;
        if p.first_fire.is_none() {
            p.first_fire = Some(now);
        }
        p.last_fire = Some(now);
        if let Some((start, cause)) = self.stall_since[id.index()].take() {
            p.add_stall(cause, now.saturating_sub(start));
        }
    }

    /// Profiling bookkeeping for a failed firing attempt: opens a stall
    /// window (once) attributed to whatever is holding the node up.
    fn note_stall(&mut self, id: NodeId) {
        if self.stall_since[id.index()].is_some() {
            return;
        }
        if let Some(cause) = self.classify_stall(id) {
            self.stall_since[id.index()] = Some((self.now, cause));
        }
    }

    fn try_fire(&mut self, id: NodeId) {
        // Loop: a node may be able to fire several times per cycle when
        // multiple waves are queued; we fire at most a few to let others go.
        for _ in 0..4 {
            if !self.fire_once(id) {
                if self.prof.is_some() {
                    self.note_stall(id);
                }
                return;
            }
            self.fired += 1;
            self.has_fired[id.index()] = true;
            if self.prof.is_some() {
                self.note_fire(id);
            }
            if let Some(tr) = self.trace.as_mut() {
                tr.push(TraceEvent::Fire { node: id, cycle: self.now });
            }
        }
        // Still more queued? Come back later this cycle.
        self.mark_dirty(id);
    }

    /// Attempts one firing; returns whether it fired.
    fn fire_once(&mut self, id: NodeId) -> bool {
        if self.sticky[id.index()].is_some() {
            return false; // sticky nodes never fire dynamically
        }
        if self.once_only[id.index()] && self.has_fired[id.index()] {
            return false; // entry-hyperblock op: one execution only
        }
        let kind = self.g.kind(id).clone();
        match kind {
            NodeKind::Removed
            | NodeKind::Const { .. }
            | NodeKind::Param { .. }
            | NodeKind::Addr { .. }
            | NodeKind::InitialToken => false,
            NodeKind::BinOp { op, ref ty } => {
                if !(self.avail(id, 0) && self.avail(id, 1) && self.space_for(id, 0)) {
                    return false;
                }
                let a = self.pop_input(id, 0);
                let b = self.pop_input(id, 1);
                let v = op.eval(ty, a, b);
                self.emit_later(id, 0, v, alu_latency(op));
                true
            }
            NodeKind::UnOp { op, ref ty } => {
                if !(self.avail(id, 0) && self.space_for(id, 0)) {
                    return false;
                }
                let a = self.pop_input(id, 0);
                self.emit_later(id, 0, op.eval(ty, a), 1);
                true
            }
            NodeKind::Cast { ref ty } => {
                if !(self.avail(id, 0) && self.space_for(id, 0)) {
                    return false;
                }
                let a = self.pop_input(id, 0);
                self.emit_now(id, 0, ty.normalize(a));
                true
            }
            NodeKind::Mux { ref ty } => {
                let nin = self.g.num_inputs(id);
                for p in 0..nin {
                    if !self.avail(id, p as u16) {
                        return false;
                    }
                }
                if !self.space_for(id, 0) {
                    return false;
                }
                // Exactly one predicate is true in a well-formed program;
                // the last true one wins otherwise.
                let mut out = 0i64;
                for k in 0..nin / 2 {
                    let p = self.pop_input(id, (2 * k) as u16);
                    let v = self.pop_input(id, (2 * k + 1) as u16);
                    if p != 0 {
                        out = ty.normalize(v);
                    }
                }
                self.emit_now(id, 0, out);
                true
            }
            NodeKind::Merge { .. } => {
                if !self.space_for(id, 0) {
                    return false;
                }
                // Pop the globally oldest waiting input.
                let nin = self.g.num_inputs(id);
                let mut best: Option<(u64, u16)> = None;
                for p in 0..nin as u16 {
                    if let Some(s) = self.front_seq(id, p) {
                        if best.map(|(bs, _)| s < bs).unwrap_or(true) {
                            best = Some((s, p));
                        }
                    }
                }
                match best {
                    Some((_, p)) => {
                        let v = self.pop_input(id, p);
                        self.emit_now(id, 0, v);
                        true
                    }
                    None => false,
                }
            }
            NodeKind::Eta { .. } => {
                if !(self.avail(id, 0) && self.avail(id, 1) && self.space_for(id, 0)) {
                    return false;
                }
                let v = self.pop_input(id, 0);
                let p = self.pop_input(id, 1);
                if p != 0 {
                    self.emit_now(id, 0, v);
                }
                true
            }
            NodeKind::Combine => {
                let nin = self.g.num_inputs(id);
                for p in 0..nin as u16 {
                    if !self.avail(id, p) {
                        return false;
                    }
                }
                if !self.space_for(id, 0) {
                    return false;
                }
                for p in 0..nin as u16 {
                    self.pop_input(id, p);
                }
                self.emit_now(id, 0, 1);
                true
            }
            NodeKind::TokenGen { .. } => self.fire_tokengen(id),
            NodeKind::Load { ref ty, .. } => {
                if !(self.avail(id, 0)
                    && self.avail(id, 1)
                    && self.avail(id, 2)
                    && self.space_for(id, 0)
                    && self.space_for(id, 1))
                {
                    return false;
                }
                let addr = self.pop_input(id, 0) as u64;
                let pred = self.pop_input(id, 1);
                self.pop_input(id, 2); // token
                self.reserve(id, 0);
                self.reserve(id, 1);
                if pred == 0 {
                    // Nullified: arbitrary value, instant token (§3.1) —
                    // but never overtaking earlier in-flight results.
                    self.emit_mem_or_defer(id, 0, 0);
                    self.emit_mem_or_defer(id, 1, 1);
                } else {
                    self.expect_mem_result(id, 0);
                    self.expect_mem_result(id, 1);
                    self.lsq_queue.push_back(MemRequest {
                        node: id,
                        addr,
                        value: 0,
                        is_store: false,
                        enqueued: self.now,
                    });
                    let _ = ty;
                }
                true
            }
            NodeKind::Store { .. } => {
                if !(self.avail(id, 0)
                    && self.avail(id, 1)
                    && self.avail(id, 2)
                    && self.avail(id, 3)
                    && self.space_for(id, 0))
                {
                    return false;
                }
                let addr = self.pop_input(id, 0) as u64;
                let value = self.pop_input(id, 1);
                let pred = self.pop_input(id, 2);
                self.pop_input(id, 3); // token
                self.reserve(id, 0);
                if pred == 0 {
                    self.emit_mem_or_defer(id, 0, 1);
                } else {
                    self.expect_mem_result(id, 0);
                    self.lsq_queue.push_back(MemRequest {
                        node: id,
                        addr,
                        value,
                        is_store: true,
                        enqueued: self.now,
                    });
                }
                true
            }
            NodeKind::Return { has_value, .. } => {
                let need = if has_value { 3 } else { 2 };
                for p in 0..need {
                    if !self.avail(id, p) {
                        return false;
                    }
                }
                let pred = self.pop_input(id, 0);
                self.pop_input(id, 1);
                let v = if has_value { Some(self.pop_input(id, 2)) } else { None };
                if pred != 0 {
                    self.result = Some((if has_value { v } else { None }, self.now));
                }
                true
            }
        }
    }

    fn fire_tokengen(&mut self, id: NodeId) -> bool {
        let mut progressed = false;
        // Absorb every available input in arrival order: predicates queue
        // up for grants, returned tokens add credits.
        loop {
            let pred_seq = self.front_seq(id, 0);
            let tok_seq = self.front_seq(id, 1);
            let pick = match (pred_seq, tok_seq) {
                (None, None) => break,
                (Some(_), None) => 0u16,
                (None, Some(_)) => 1u16,
                (Some(a), Some(b)) => {
                    if a < b {
                        0
                    } else {
                        1
                    }
                }
            };
            if pick == 0 {
                let p = self.pop_input(id, 0);
                let st = self.tokengen.get_mut(&id).expect("tokengen state");
                st.queue.push_back(p != 0);
            } else {
                self.pop_input(id, 1);
                let st = self.tokengen.get_mut(&id).expect("tokengen state");
                st.credits += 1;
            }
            progressed = true;
        }
        // Emit grants in order while credits (or free exit grants) allow
        // and the consumers have space.
        loop {
            let st = self.tokengen.get_mut(&id).expect("tokengen state");
            let Some(&needs_credit) = st.queue.front() else { break };
            if needs_credit && st.credits == 0 {
                break;
            }
            if !self.space_for(id, 0) {
                break;
            }
            let st = self.tokengen.get_mut(&id).expect("tokengen state");
            if needs_credit {
                st.credits -= 1;
            }
            st.queue.pop_front();
            self.emit_now(id, 0, 1);
            progressed = true;
        }
        progressed
    }

    /// Issues queued memory requests subject to ports and LSQ size.
    fn lsq_issue(&mut self) {
        let mut issued = 0;
        while issued < self.config.lsq_ports
            && self.lsq_in_flight < self.config.lsq_size
            && !self.lsq_queue.is_empty()
        {
            let req = self.lsq_queue.pop_front().expect("nonempty queue");
            let lat = self.machine.access_cycles(req.addr, req.is_store);
            if let Some(prof) = self.prof.as_mut() {
                // Port contention: cycles the request sat queued.
                prof[req.node.index()]
                    .add_stall(StallCause::LsqPort, self.now.saturating_sub(req.enqueued));
            }
            if req.is_store {
                let ty = match self.g.kind(req.node) {
                    NodeKind::Store { ty, .. } => ty.clone(),
                    _ => unreachable!("store request from non-store"),
                };
                self.machine.store(req.addr, &ty, req.value);
                // Token as soon as the store is ordered (§3.2: "the token
                // can be generated before memory has been updated").
                self.complete_mem(req.node, 0, 1, self.now + 1);
            } else {
                let ty = match self.g.kind(req.node) {
                    NodeKind::Load { ty, .. } => ty.clone(),
                    _ => unreachable!("load request from non-load"),
                };
                let v = self.machine.load(req.addr, &ty);
                // Value when the access completes; token once ordered.
                self.complete_mem(req.node, 0, v, self.now + lat);
                self.complete_mem(req.node, 1, 1, self.now + 1);
            }
            self.lsq_in_flight += 1;
            self.push_event(self.now + lat, Ev::LsqRelease);
            if let Some(tr) = self.trace.as_mut() {
                tr.push(TraceEvent::Mem {
                    node: req.node,
                    cycle: self.now,
                    latency: lat,
                    addr: req.addr,
                    is_store: req.is_store,
                });
                tr.push(TraceEvent::Lsq {
                    cycle: self.now,
                    in_flight: self.lsq_in_flight,
                    queued: self.lsq_queue.len() as u32,
                });
            }
            issued += 1;
        }
    }
}

fn sticky_of(sticky: &[Option<i64>], src: Src) -> Option<i64> {
    if src.port == 0 {
        sticky[src.node.index()]
    } else {
        None
    }
}

fn alu_latency(op: BinOp) -> u64 {
    match op {
        BinOp::Mul => 3,
        BinOp::Div | BinOp::Rem => 20,
        _ => 1,
    }
}

/// Normalization helper for tests.
#[doc(hidden)]
pub fn normalize(ty: &Type, v: i64) -> i64 {
    ty.normalize(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfgir::objects::{MemObject, ObjectSet};
    use cfgir::Module;

    fn one_cell_module(init: i64) -> (Module, u64) {
        let mut m = Module::new();
        m.add_object(MemObject::global("a", Type::int(32), 1).with_init(vec![init]));
        (m, 0x1000) // first object lands at BASE_ADDR
    }

    fn perfect(latency: u64) -> SimConfig {
        SimConfig {
            mem: MemSystem::Perfect { latency },
            max_cycles: 10_000,
            ..SimConfig::default()
        }
    }

    /// store a[0] = 7 ; token-ordered load a[0] ; return it.
    fn store_then_load(store_pred: bool) -> (Module, Graph) {
        let (module, base) = one_cell_module(5);
        let mut g = Graph::new();
        let t = g.add_node(NodeKind::InitialToken, 0, 0);
        let ptrue = g.const_bool(true, 0);
        let sp = g.const_bool(store_pred, 0);
        let addr = g.add_node(NodeKind::Const { value: base as i64, ty: Type::int(64) }, 0, 0);
        let seven = g.add_node(NodeKind::Const { value: 7, ty: Type::int(32) }, 0, 0);
        let st = g.add_node(NodeKind::Store { ty: Type::int(32), may: ObjectSet::Top }, 4, 0);
        g.connect(Src::of(addr), st, 0);
        g.connect(Src::of(seven), st, 1);
        g.connect(Src::of(sp), st, 2);
        g.connect(Src::of(t), st, 3);
        let ld = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
        g.connect(Src::of(addr), ld, 0);
        g.connect(Src::of(ptrue), ld, 1);
        g.connect(Src::of(st), ld, 2); // the store's token orders the load
        let ret = g.add_node(NodeKind::Return { has_value: true, ty: Type::int(32) }, 3, 0);
        g.connect(Src::of(ptrue), ret, 0);
        g.connect(Src::token_of_load(ld), ret, 1);
        g.connect(Src::of(ld), ret, 2);
        (module, g)
    }

    #[test]
    fn token_ordered_load_sees_an_in_flight_store() {
        // §3.2 / §7.3: the store's token is generated as soon as the access
        // is ordered in the LSQ, not when it completes, and the dependent
        // load is forwarded the stored value. With a 40-cycle memory the
        // pair must finish in well under two full round trips.
        let (module, g) = store_then_load(true);
        let mut machine = Machine::new(&module, MemSystem::Perfect { latency: 40 });
        let r = simulate(&g, &mut machine, &[], &perfect(40)).unwrap();
        assert_eq!(r.ret, Some(7));
        assert_eq!(r.stats.stores, 1);
        assert_eq!(r.stats.loads, 1);
        assert!(r.cycles < 80, "no forwarding: {} cycles", r.cycles);
    }

    #[test]
    fn nullified_store_releases_its_token_without_touching_memory() {
        let (module, g) = store_then_load(false);
        let mut machine = Machine::new(&module, MemSystem::Perfect { latency: 2 });
        let r = simulate(&g, &mut machine, &[], &perfect(2)).unwrap();
        assert_eq!(r.ret, Some(5), "load must see the initial value");
        assert_eq!(r.stats.stores, 0, "nullified store must not access memory");
        assert_eq!(r.stats.loads, 1);
    }

    #[test]
    fn nullified_firing_does_not_overtake_an_in_flight_result() {
        // Regression test: a load fires twice on one wave — first with a
        // true predicate (a real, slow access), then with a false one (an
        // instant nullified result). Channel delivery must stay in firing
        // order: the consumer reads the real value first, not the filler.
        let mut module = Module::new();
        module.add_object(MemObject::global("a", Type::int(32), 1).with_init(vec![42]));
        module.add_object(MemObject::global("b", Type::int(32), 2).with_init(vec![1, 0]));
        let (base_a, base_b) = (0x1000i64, 0x1008i64);
        let mut g = Graph::new();
        let ptrue = g.const_bool(true, 0);
        let addr = g.add_node(NodeKind::Const { value: base_a, ty: Type::int(64) }, 0, 0);
        // Predicate sequence [1, 0] on one edge: two token-chained loads of
        // b[0]=1 and b[1]=0 (load results are never sticky, so they queue),
        // cast to bool, merged in completion order.
        let t0 = g.add_node(NodeKind::InitialToken, 0, 0);
        let ab0 = g.add_node(NodeKind::Const { value: base_b, ty: Type::int(64) }, 0, 0);
        let ab1 = g.add_node(NodeKind::Const { value: base_b + 4, ty: Type::int(64) }, 0, 0);
        let pl1 = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
        g.connect(Src::of(ab0), pl1, 0);
        g.connect(Src::of(ptrue), pl1, 1);
        g.connect(Src::of(t0), pl1, 2);
        let pl2 = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
        g.connect(Src::of(ab1), pl2, 0);
        g.connect(Src::of(ptrue), pl2, 1);
        g.connect(Src::token_of_load(pl1), pl2, 2); // pl1 completes first
        let c1 = g.add_node(NodeKind::Cast { ty: Type::Bool }, 1, 0);
        g.connect(Src::of(pl1), c1, 0);
        let c2 = g.add_node(NodeKind::Cast { ty: Type::Bool }, 1, 0);
        g.connect(Src::of(pl2), c2, 0);
        let pm = g.add_node(NodeKind::Merge { vc: VClass::Pred, ty: Type::Bool }, 2, 0);
        g.connect(Src::of(c1), pm, 0);
        g.connect(Src::of(c2), pm, 1);
        // Two wave tokens at once: both firings are enabled back to back.
        let t1 = g.add_node(NodeKind::InitialToken, 0, 0);
        let t2 = g.add_node(NodeKind::InitialToken, 0, 0);
        let tm = g.add_node(NodeKind::Merge { vc: VClass::Token, ty: Type::Void }, 2, 0);
        g.connect(Src::of(t1), tm, 0);
        g.connect(Src::of(t2), tm, 1);
        let ld = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
        g.connect(Src::of(addr), ld, 0);
        g.connect(Src::of(pm), ld, 1);
        g.connect(Src::of(tm), ld, 2);
        // The return rides the same predicate sequence: it must see the
        // real 42 on the true wave, not the nullified wave's filler. If
        // channel order broke, the filler 0 would pair with the true
        // predicate and become the result.
        let ret = g.add_node(NodeKind::Return { has_value: true, ty: Type::int(32) }, 3, 0);
        g.connect(Src::of(pm), ret, 0);
        g.connect(Src::token_of_load(ld), ret, 1);
        g.connect(Src::of(ld), ret, 2);

        let mut machine = Machine::new(&module, MemSystem::Perfect { latency: 10 });
        let r = simulate(&g, &mut machine, &[], &perfect(10)).unwrap();
        assert_eq!(r.ret, Some(42), "nullified filler overtook the real load result");
        assert_eq!(
            r.stats.loads, 3,
            "only the true-predicate firing of the main load accesses memory"
        );
    }

    #[test]
    fn simulation_stats_carry_the_cache_breakdown() {
        let (module, g) = store_then_load(true);
        let mem = MemSystem::Hierarchy(crate::memory::CacheParams::default());
        let mut machine = Machine::new(&module, mem.clone());
        let cfg = SimConfig { mem, max_cycles: 10_000, ..SimConfig::default() };
        let r = simulate(&g, &mut machine, &[], &cfg).unwrap();
        assert_eq!(r.ret, Some(7));
        // Cold store misses everywhere; the dependent load hits in L1.
        assert_eq!(r.stats.l1_misses, 1);
        assert_eq!(r.stats.l1_hits, 1);
        assert_eq!(r.stats.tlb_misses, 1);
        assert_eq!(r.stats.tlb_hits, 1);
    }
}
