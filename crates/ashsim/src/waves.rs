//! The compiled backend: executes a [`LoweredProgram`] instead of
//! interpreting the `Graph`.
//!
//! Execution proceeds in *dataflow waves*: marking a node ready enqueues
//! it on a FIFO worklist guarded by a ready bitset, and draining the list
//! fires one breadth-first cascade — every zero-latency consequence of
//! this cycle's deliveries — before time advances. The event backend
//! computes the same waves through its dirty queue; here the worklist is
//! a dense `u32` ring plus one bit per node, and each firing dispatches
//! on a pre-specialized opcode with its operand slots already resolved to
//! flat port ids, so the wave loop never touches `Graph`.
//!
//! **Equivalence contract**: this executor must be *bit-identical* to
//! [`crate::exec`] — same ready-queue order, same global sequence-number
//! assignment, same calendar event queue, same LSQ discipline. Delivery
//! sequence numbers arbitrate `Merge` nodes, so any reordering would be
//! observable in cycle counts and results; `tests/backend_equiv.rs` and
//! the `sim_determinism` goldens pin this. Speed comes from lowering
//! (static dispatch, dense slot addressing) and from batching
//! ([`BatchRunner`] amortizes lowering over a sweep), never from
//! reordering.

use crate::backend::BackendKind;
use crate::compile::{LoweredProgram, Op, OpCode};
use crate::critpath::{self, CritState, EdgeClass, NO_REC};
use crate::exec::{observe, BlockedNode, SimConfig, SimError, SimResult};
use crate::memory::Machine;
use crate::profile::{kind_label, NodeProfile, SimProfile, StallCause};
use crate::sched::{Ev, EventQueue, MemRequest, PendingOut, PortFifos, TokenGenState, RECENT_CAP};
use crate::trace::{Trace, TraceEvent};
use crate::wavecap::{stall_code, WaveState};
use pegasus::{Graph, NodeId, VClass};
use std::collections::VecDeque;

/// Runs a pre-lowered program with the full telemetry wrapper — the
/// batched entry point. Lower once ([`LoweredProgram::lower`] or
/// [`BatchRunner::new`]), then call this per run; `graph` must be the
/// graph the program was lowered from (used only on cold paths:
/// deadlock reports, profile/critical-path summaries).
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate_lowered(
    prog: &LoweredProgram,
    graph: &Graph,
    machine: &mut Machine,
    args: &[i64],
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    observe(|| run_lowered(prog, graph, machine, args, config))
}

/// Raw (un-instrumented) entry point for the compiled backend.
pub(crate) fn run_lowered(
    prog: &LoweredProgram,
    graph: &Graph,
    machine: &mut Machine,
    args: &[i64],
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    CompiledExec::new(prog, graph, machine, args, config).and_then(CompiledExec::run)
}

/// A graph lowered once and runnable many times: the struct-of-arrays
/// batching handle. Independent runs (argument sweeps, memory-system
/// rows, generator seeds) share one decode of the graph; each `run` gets
/// fresh dynamic state, so results are identical to per-run lowering.
pub struct BatchRunner<'g> {
    g: &'g Graph,
    prog: LoweredProgram,
}

impl<'g> BatchRunner<'g> {
    /// Lowers `g` once, up front.
    pub fn new(g: &'g Graph) -> BatchRunner<'g> {
        BatchRunner { g, prog: LoweredProgram::lower(g) }
    }

    /// One run of the batch, honoring `config.backend`: the compiled
    /// backend reuses this runner's lowered program; the event backend
    /// ignores it (there is nothing to amortize) and interprets the
    /// graph. Either way the result is bit-identical.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(
        &self,
        machine: &mut Machine,
        args: &[i64],
        config: &SimConfig,
    ) -> Result<SimResult, SimError> {
        match config.backend {
            BackendKind::Compiled => simulate_lowered(&self.prog, self.g, machine, args, config),
            BackendKind::Event => crate::exec::simulate(self.g, machine, args, config),
        }
    }

    /// The lowered program (e.g. for disassembly).
    pub fn program(&self) -> &LoweredProgram {
        &self.prog
    }
}

/// The compiled-backend executor. Field-for-field mirror of
/// `exec::Executor`, with the graph/`FlatPorts` pair replaced by the
/// lowered program (the graph stays only for cold paths).
struct CompiledExec<'a> {
    prog: &'a LoweredProgram,
    /// Cold paths only: deadlock labels, profile/crit summaries.
    g: &'a Graph,
    machine: &'a mut Machine,
    config: &'a SimConfig,
    fifos: PortFifos,
    /// Sticky value of each flat input port's source (per run — sticky
    /// values depend on the arguments and object bases).
    in_sticky: Vec<Option<i64>>,
    reserved: Vec<u32>,
    out_horizon: Vec<u64>,
    mem_out: Vec<VecDeque<PendingOut>>,
    sticky: Vec<Option<i64>>,
    once_only: Vec<bool>,
    has_fired: Vec<bool>,
    events: EventQueue,
    /// The wave worklist: nodes to (re-)examine this cycle, FIFO.
    ready: VecDeque<u32>,
    /// Membership bitset for `ready`, one bit per node.
    ready_bits: Vec<u64>,
    tokengen: Vec<Option<TokenGenState>>,
    lsq_queue: VecDeque<MemRequest>,
    lsq_in_flight: u32,
    seq: u64,
    now: u64,
    fired: u64,
    deferrals: u64,
    result: Option<(Option<i64>, u64)>,
    prof: Option<Vec<NodeProfile>>,
    stall_since: Vec<Option<(u64, StallCause)>>,
    trace: Option<Vec<TraceEvent>>,
    recent: Vec<(u32, u64)>,
    recent_next: usize,
    crit_on: bool,
    crit: CritState,
    /// Waveform capture, hooked at the same sites as the event backend's
    /// (`wavecap` module docs): the captures are element-identical, so
    /// both backends render byte-identical VCD.
    waves_on: bool,
    wave: WaveState,
}

impl<'a> CompiledExec<'a> {
    fn new(
        prog: &'a LoweredProgram,
        g: &'a Graph,
        machine: &'a mut Machine,
        args: &[i64],
        config: &'a SimConfig,
    ) -> Result<Self, SimError> {
        let n = prog.ops.len();
        let num_in = prog.flat.num_in_ports();
        let num_out = prog.flat.num_out_ports();
        // Sticky propagation over the lowered topological order: the same
        // pass as the event backend's, evaluated against the op table.
        let mut sticky: Vec<Option<i64>> = vec![None; n];
        for &id in &prog.topo {
            let op = &prog.ops[id.index()];
            let s0 = |p: u32, sticky: &[Option<i64>]| -> Option<i64> {
                match prog.in_src0[(op.in_base + p) as usize] {
                    u32::MAX => None,
                    src => sticky[src as usize],
                }
            };
            let v = match &op.code {
                OpCode::Const { value } => Some(*value),
                OpCode::Param { index, ty } => match args.get(*index) {
                    Some(v) => Some(ty.normalize(*v)),
                    None => return Err(SimError::MissingArgument { index: *index }),
                },
                OpCode::Addr { obj } => Some(machine.obj_base(*obj) as i64),
                OpCode::Bin { op: b, ty, .. } => match (s0(0, &sticky), s0(1, &sticky)) {
                    (Some(a), Some(c)) => Some(b.eval(ty, a, c)),
                    _ => None,
                },
                OpCode::Un { op: u, ty } => s0(0, &sticky).map(|a| u.eval(ty, a)),
                OpCode::Cast { ty } => s0(0, &sticky).map(|a| ty.normalize(a)),
                OpCode::Mux { ty } => {
                    let nin = op.nin as usize;
                    let mut vals = Vec::with_capacity(nin);
                    for p in 0..nin as u32 {
                        match s0(p, &sticky) {
                            Some(v) => vals.push(v),
                            None => {
                                vals.clear();
                                break;
                            }
                        }
                    }
                    if vals.len() == nin && nin >= 2 {
                        let mut out = 0i64;
                        for k in 0..nin / 2 {
                            if vals[2 * k] != 0 {
                                out = ty.normalize(vals[2 * k + 1]);
                            }
                        }
                        Some(out)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            sticky[id.index()] = v;
        }
        let mut once_only = vec![false; n];
        let mut tokengen: Vec<Option<TokenGenState>> = vec![None; n];
        for (i, op) in prog.ops.iter().enumerate() {
            if matches!(op.code, OpCode::Skip) {
                continue;
            }
            if let OpCode::TokenGen { credits } = op.code {
                tokengen[i] = Some(TokenGenState {
                    credits: u64::from(credits),
                    queue: VecDeque::new(),
                    last_arrival: None,
                });
            }
            if sticky[i].is_some() || op.nin == 0 {
                continue;
            }
            once_only[i] =
                (0..u32::from(op.nin)).all(|p| match prog.in_src0[(op.in_base + p) as usize] {
                    u32::MAX => false,
                    src => sticky[src as usize].is_some(),
                });
        }
        let mut in_sticky: Vec<Option<i64>> = vec![None; num_in];
        for (fp, s) in in_sticky.iter_mut().enumerate() {
            if let Some(&src) = prog.in_src0.get(fp) {
                if src != u32::MAX {
                    *s = sticky[src as usize];
                }
            }
        }
        let crit_on = config.critpath;
        let crit = if crit_on {
            CritState::new(num_in, config.channel_capacity.max(1), prog.out_class.clone())
        } else {
            CritState::new(0, 1, Vec::new())
        };
        let mut ex = CompiledExec {
            prog,
            g,
            machine,
            config,
            fifos: PortFifos::new(num_in, config.channel_capacity.max(1)),
            in_sticky,
            reserved: vec![0; num_in],
            out_horizon: vec![0; num_out],
            mem_out: (0..num_out).map(|_| VecDeque::new()).collect(),
            sticky,
            once_only,
            has_fired: vec![false; n],
            events: EventQueue::new(),
            ready: VecDeque::new(),
            ready_bits: vec![0; n.div_ceil(64)],
            tokengen,
            lsq_queue: VecDeque::new(),
            lsq_in_flight: 0,
            seq: 0,
            now: 0,
            fired: 0,
            deferrals: 0,
            result: None,
            prof: config.profile.then(|| vec![NodeProfile::default(); n]),
            stall_since: if config.profile { vec![None; n] } else { Vec::new() },
            trace: config.trace.then(Vec::new),
            recent: Vec::with_capacity(RECENT_CAP),
            recent_next: 0,
            crit_on,
            crit,
            waves_on: config.waves,
            wave: if config.waves { WaveState::new(num_out, num_in, n) } else { WaveState::off() },
        };
        // Kick off, in node order like the event backend: initial tokens
        // deliver at cycle 0; everything else joins the first wave.
        for i in 0..n {
            match ex.prog.ops[i].code {
                OpCode::Skip => {}
                OpCode::InitialToken => {
                    let fire = if ex.crit_on {
                        ex.crit.push_rec(i as u32, NO_REC, EdgeClass::Token, 0)
                    } else {
                        NO_REC
                    };
                    ex.push_event(
                        0,
                        Ev::Deliver { node: NodeId(i as u32), port: 0, value: 1, fire },
                    )
                }
                _ => ex.mark_ready(i as u32),
            }
        }
        Ok(ex)
    }

    fn push_event(&mut self, t: u64, ev: Ev) {
        self.seq += 1;
        self.events.push(t, self.seq, ev);
    }

    /// Enqueues node `i` on the wave worklist unless its ready bit is
    /// already set. Same FIFO discipline as the event backend's dirty
    /// queue — order is observable through merge arbitration.
    #[inline]
    fn mark_ready(&mut self, i: u32) {
        let (w, b) = ((i >> 6) as usize, i & 63);
        if self.ready_bits[w] & (1 << b) == 0 {
            self.ready_bits[w] |= 1 << b;
            self.ready.push_back(i);
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        loop {
            match self.step_once() {
                Ok(Some(r)) => return Ok(r),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// One scheduler round: deliveries, LSQ issue, one firing wave, time
    /// advance. Mirrors `exec::Executor::step_once` exactly.
    fn step_once(&mut self) -> Result<Option<SimResult>, SimError> {
        let due = self.events.take_due(self.now);
        for &(_, _, ev) in &due {
            match ev {
                Ev::Deliver { node, port, value, fire } => {
                    let oid = self.prog.ops[node.index()].out_base + u32::from(port);
                    self.deliver(oid, value, fire)
                }
                Ev::LsqRelease { level } => {
                    self.lsq_in_flight -= 1;
                    if self.crit_on {
                        self.crit.timeline.release(self.now, level);
                    }
                    if let Some(tr) = self.trace.as_mut() {
                        tr.push(TraceEvent::Lsq {
                            cycle: self.now,
                            in_flight: self.lsq_in_flight,
                            queued: self.lsq_queue.len() as u32,
                        });
                    }
                }
            }
        }
        self.events.recycle(due);
        self.lsq_issue();
        // Drain the wave: breadth-first over the ready worklist, with the
        // same spin guard as the event backend.
        let mut steps = 0usize;
        let step_cap = 64 * self.prog.ops.len() + 1024;
        while let Some(i) = self.ready.pop_front() {
            self.ready_bits[(i >> 6) as usize] &= !(1 << (i & 63));
            self.try_fire(i);
            if self.result.is_some() {
                break;
            }
            steps += 1;
            if steps > step_cap {
                self.deferrals += 1;
                break;
            }
        }
        if let Some((ret, cycles)) = self.result {
            return Ok(Some(self.finish(ret, cycles)));
        }
        let busy = !self.ready.is_empty() || !self.lsq_queue.is_empty();
        let next = if busy {
            self.now + 1
        } else {
            match self.events.next_time() {
                Some(t) => t.max(self.now + 1),
                None => {
                    return Err(SimError::Deadlock {
                        cycle: self.now,
                        blocked: self.blocked_nodes(),
                    })
                }
            }
        };
        if next > self.config.max_cycles {
            return Err(SimError::MaxCycles { limit: self.config.max_cycles });
        }
        self.now = next;
        Ok(None)
    }

    /// Pushes `value` into the FIFO of every consumer of flat output
    /// `oid`, assigning the delivery's global sequence number.
    fn deliver(&mut self, oid: u32, value: i64, fire: u32) {
        self.seq += 1;
        let seq = self.seq;
        let crit_class = if self.crit_on {
            EdgeClass::from_u8(self.prog.out_class[oid as usize])
        } else {
            EdgeClass::Data
        };
        if self.waves_on {
            self.wave.record_out(oid as usize, self.now, value);
        }
        let (start, end) = self.prog.flat.consumer_range_of(oid);
        for i in start..end {
            let u = self.prog.flat.consumer_at(i);
            let r = &mut self.reserved[u.dst_flat as usize];
            if *r > 0 {
                *r -= 1;
            }
            let at = self.fifos.push_back(u.dst_flat as usize, (seq, value));
            if self.crit_on {
                self.crit.channel_push(at, fire, self.now, crit_class);
            }
            if self.waves_on {
                self.wave.record_occ_push(u.dst_flat as usize, self.now);
            }
            self.mark_ready(u.dst.0);
        }
    }

    #[inline]
    fn avail(&self, fp: usize) -> bool {
        self.in_sticky[fp].is_some() || !self.fifos.is_empty(fp)
    }

    #[inline]
    fn front_seq(&self, fp: usize) -> Option<u64> {
        self.fifos.front(fp).map(|(s, _)| s)
    }

    /// Pops flat input `fp` (no-op for sticky inputs), waking the
    /// producer on a full→non-full transition.
    fn pop_input(&mut self, fp: usize) -> i64 {
        if let Some(v) = self.in_sticky[fp] {
            return v;
        }
        let was_full =
            self.fifos.len(fp) + self.reserved[fp] as usize >= self.config.channel_capacity;
        let ((_, v), at) = self.fifos.pop_front(fp).expect("pop of available input");
        if self.crit_on {
            self.crit.pop_and_offer(at);
        }
        if self.waves_on {
            self.wave.record_occ_pop(fp, self.now);
        }
        if was_full {
            self.mark_ready(self.prog.in_src[fp]);
        }
        v
    }

    /// Do all consumers of flat output `oid` have space for one value?
    fn space_for(&self, oid: u32) -> bool {
        for u in self.prog.flat.consumers_of(oid) {
            let len = self.fifos.len(u.dst_flat as usize);
            let res = self.reserved[u.dst_flat as usize] as usize;
            if len + res >= self.config.channel_capacity {
                return false;
            }
        }
        true
    }

    fn reserve(&mut self, oid: u32) {
        let (start, end) = self.prog.flat.consumer_range_of(oid);
        for i in start..end {
            let u = self.prog.flat.consumer_at(i);
            self.reserved[u.dst_flat as usize] += 1;
        }
    }

    #[inline]
    fn crit_fire_rec(&mut self) -> u32 {
        if self.crit_on {
            self.crit.fire_rec(self.now)
        } else {
            NO_REC
        }
    }

    #[inline]
    fn crit_grant_rec(&mut self, i: u32) -> u32 {
        if !self.crit_on {
            return NO_REC;
        }
        if self.crit.best().is_none() {
            if let Some(b) = self.tokengen[i as usize].as_ref().and_then(|st| st.last_arrival) {
                self.crit.seed_best(b);
            }
        }
        let r = self.crit.fire_rec(self.now);
        self.crit.begin_fire(i);
        r
    }

    fn emit_now(&mut self, oid: u32, value: i64, fire: u32) {
        self.deliver(oid, value, fire);
    }

    fn emit_later(&mut self, id: u32, port: u16, value: i64, lat: u64, fire: u32) {
        let oid = self.prog.ops[id as usize].out_base + u32::from(port);
        self.reserve(oid);
        self.push_event(self.now + lat, Ev::Deliver { node: NodeId(id), port, value, fire });
    }

    /// Schedules a delivery no earlier than any previously scheduled
    /// delivery on the same output port (in-order channels).
    fn emit_ordered(&mut self, id: u32, port: u16, value: i64, t: u64, fire: u32) {
        let oid = self.prog.ops[id as usize].out_base + u32::from(port);
        let h = &mut self.out_horizon[oid as usize];
        let t2 = t.max(*h);
        *h = t2;
        self.push_event(t2, Ev::Deliver { node: NodeId(id), port, value, fire });
    }

    /// Nullified-memory-output emission: instant unless real requests are
    /// outstanding on this port (see `exec::Executor::emit_mem_or_defer`).
    fn emit_mem_or_defer(&mut self, id: u32, port: u16, value: i64, fire: u32) {
        let oid = self.prog.ops[id as usize].out_base + u32::from(port);
        if self.mem_out[oid as usize].is_empty() {
            self.emit_ordered(id, port, value, self.now, fire);
        } else {
            self.mem_out[oid as usize].push_back(PendingOut::Null(value, fire));
        }
    }

    fn expect_mem_result(&mut self, id: u32, port: u16) {
        let oid = self.prog.ops[id as usize].out_base + u32::from(port);
        self.mem_out[oid as usize].push_back(PendingOut::Real);
    }

    fn complete_mem(&mut self, id: u32, port: u16, value: i64, t: u64, fire: u32) {
        let oid = (self.prog.ops[id as usize].out_base + u32::from(port)) as usize;
        let front = self.mem_out[oid].pop_front();
        debug_assert!(matches!(front, Some(PendingOut::Real)), "slot order broken");
        self.emit_ordered(id, port, value, t, fire);
        while let Some(&PendingOut::Null(v, f)) = self.mem_out[oid].front() {
            self.mem_out[oid].pop_front();
            self.emit_ordered(id, port, v, self.now, f);
        }
    }

    fn finish(&mut self, ret: Option<i64>, cycles: u64) -> SimResult {
        let profile = self.prof.take().map(|mut nodes| {
            for (i, open) in self.stall_since.iter_mut().enumerate() {
                if let Some((start, cause)) = open.take() {
                    nodes[i].add_stall(cause, cycles.saturating_sub(start));
                }
            }
            SimProfile { nodes, cycles }
        });
        let trace = self.trace.take().map(|events| Trace { events });
        let crit = self.crit_on.then(|| {
            self.crit.timeline.finish(cycles);
            critpath::summarize(&self.crit, self.g)
        });
        let waves = self.waves_on.then(|| std::mem::take(&mut self.wave).into_wave(cycles));
        SimResult {
            ret,
            cycles,
            stats: self.machine.stats.clone(),
            fired: self.fired,
            deferrals: self.deferrals,
            wall_us: 0, // stamped by the public entry points
            backend: BackendKind::Compiled.label(),
            profile,
            trace,
            crit,
            waves,
        }
    }

    /// Deadlock report (cold path — allowed to consult the graph for
    /// labels and hyperblock ids).
    fn blocked_nodes(&self) -> Vec<BlockedNode> {
        let mut out = Vec::new();
        for (i, op) in self.prog.ops.iter().enumerate() {
            if matches!(op.code, OpCode::Skip)
                || self.sticky[i].is_some()
                || (self.once_only[i] && self.has_fired[i])
            {
                continue;
            }
            let nin = op.nin;
            if nin == 0 {
                continue;
            }
            let mut have = Vec::new();
            let mut missing = Vec::new();
            let mut queued = false;
            for p in 0..nin {
                let fp = (op.in_base + u32::from(p)) as usize;
                if self.avail(fp) {
                    have.push(p);
                    queued |= !self.fifos.is_empty(fp);
                } else {
                    missing.push((p, self.prog.in_class[fp]));
                }
            }
            if (!have.is_empty() && !missing.is_empty()) || (missing.is_empty() && queued) {
                let id = NodeId(i as u32);
                out.push(BlockedNode {
                    node: id,
                    op: kind_label(self.g.kind(id)),
                    hb: self.g.hb(id),
                    have,
                    missing,
                });
            }
        }
        out
    }

    /// Stall attribution — same rules as the event backend, against the
    /// lowered tables.
    fn classify_stall(&self, i: u32) -> Option<StallCause> {
        let op = &self.prog.ops[i as usize];
        if self.sticky[i as usize].is_some()
            || (self.once_only[i as usize] && self.has_fired[i as usize])
        {
            return None;
        }
        if op.nin == 0 {
            return None;
        }
        let mut queued = false;
        let mut missing = None;
        for p in 0..op.nin {
            let fp = (op.in_base + u32::from(p)) as usize;
            if self.avail(fp) {
                queued |= !self.fifos.is_empty(fp);
            } else if missing.is_none() {
                missing = Some(fp);
            }
        }
        match missing {
            Some(fp) => {
                if !queued {
                    return None; // nothing has arrived: idle, not stalled
                }
                Some(match self.prog.in_class[fp] {
                    VClass::Data => StallCause::DataInput,
                    VClass::Pred => StallCause::PredInput,
                    VClass::Token => StallCause::TokenInput,
                })
            }
            None if queued => Some(StallCause::OutputSpace),
            None => None,
        }
    }

    fn note_fire(&mut self, i: u32) {
        let now = self.now;
        let prof = self.prof.as_mut().expect("note_fire only when profiling");
        let p = &mut prof[i as usize];
        p.fires += 1;
        if p.first_fire.is_none() {
            p.first_fire = Some(now);
        }
        p.last_fire = Some(now);
        if let Some((start, cause)) = self.stall_since[i as usize].take() {
            p.add_stall(cause, now.saturating_sub(start));
        }
    }

    fn note_stall(&mut self, i: u32) {
        if self.stall_since[i as usize].is_some() {
            return;
        }
        if let Some(cause) = self.classify_stall(i) {
            self.stall_since[i as usize] = Some((self.now, cause));
        }
    }

    fn try_fire(&mut self, i: u32) {
        // At most a few back-to-back firings per visit, like the event
        // backend, so one node cannot monopolize a wave.
        for _ in 0..4 {
            if !self.fire_once(i) {
                if self.prof.is_some() {
                    self.note_stall(i);
                }
                if self.waves_on {
                    let code = stall_code(self.classify_stall(i));
                    self.wave.record_stall(i as usize, self.now, code);
                }
                return;
            }
            self.fired += 1;
            self.has_fired[i as usize] = true;
            if self.recent.len() < RECENT_CAP {
                self.recent.push((i, self.now));
            } else {
                self.recent[self.recent_next] = (i, self.now);
            }
            self.recent_next = (self.recent_next + 1) % RECENT_CAP;
            if self.prof.is_some() {
                self.note_fire(i);
            }
            if self.waves_on {
                self.wave.record_fire(i as usize, self.now);
                self.wave.record_stall(i as usize, self.now, 0);
            }
            if let Some(tr) = self.trace.as_mut() {
                tr.push(TraceEvent::Fire { node: NodeId(i), cycle: self.now });
            }
        }
        self.mark_ready(i);
    }

    /// Attempts one firing of op `i`; returns whether it fired. One
    /// static dispatch on the lowered opcode — no graph access.
    fn fire_once(&mut self, i: u32) -> bool {
        if self.sticky[i as usize].is_some() {
            return false; // sticky nodes never fire dynamically
        }
        if self.once_only[i as usize] && self.has_fired[i as usize] {
            return false; // entry-hyperblock op: one execution only
        }
        if self.crit_on {
            self.crit.begin_fire(i);
        }
        // Copy the program reference out of `self` so matching on the op
        // borrows the lowered program (which outlives this call), not
        // `self`.
        let prog = self.prog;
        let op: &Op = &prog.ops[i as usize];
        let inb = op.in_base;
        let outb = op.out_base;
        match &op.code {
            OpCode::Skip
            | OpCode::Const { .. }
            | OpCode::Param { .. }
            | OpCode::Addr { .. }
            | OpCode::InitialToken => false,
            OpCode::Bin { op: b, ty, lat } => {
                if !(self.avail(inb as usize)
                    && self.avail(inb as usize + 1)
                    && self.space_for(outb))
                {
                    return false;
                }
                let a = self.pop_input(inb as usize);
                let c = self.pop_input(inb as usize + 1);
                let v = b.eval(ty, a, c);
                let fr = self.crit_fire_rec();
                self.emit_later(i, 0, v, *lat, fr);
                true
            }
            OpCode::Un { op: u, ty } => {
                if !(self.avail(inb as usize) && self.space_for(outb)) {
                    return false;
                }
                let a = self.pop_input(inb as usize);
                let fr = self.crit_fire_rec();
                self.emit_later(i, 0, u.eval(ty, a), 1, fr);
                true
            }
            OpCode::Cast { ty } => {
                if !(self.avail(inb as usize) && self.space_for(outb)) {
                    return false;
                }
                let a = self.pop_input(inb as usize);
                let fr = self.crit_fire_rec();
                self.emit_now(outb, ty.normalize(a), fr);
                true
            }
            OpCode::Mux { ty } => {
                let nin = op.nin as usize;
                for p in 0..nin {
                    if !self.avail(inb as usize + p) {
                        return false;
                    }
                }
                if !self.space_for(outb) {
                    return false;
                }
                // Exactly one predicate is true in a well-formed program;
                // the last true one wins otherwise.
                let mut out = 0i64;
                for k in 0..nin / 2 {
                    let p = self.pop_input(inb as usize + 2 * k);
                    let v = self.pop_input(inb as usize + 2 * k + 1);
                    if p != 0 {
                        out = ty.normalize(v);
                    }
                }
                let fr = self.crit_fire_rec();
                self.emit_now(outb, out, fr);
                true
            }
            OpCode::Merge => {
                if !self.space_for(outb) {
                    return false;
                }
                // Pop the globally oldest waiting input. Strictly smaller
                // wins, first port wins ties — same as the event backend.
                let nin = op.nin as usize;
                let mut best_seq = u64::MAX;
                let mut best_p = usize::MAX;
                for p in 0..nin {
                    let s = self.fifos.front_seq_or_max(inb as usize + p);
                    if s < best_seq {
                        best_seq = s;
                        best_p = p;
                    }
                }
                if best_p == usize::MAX {
                    return false;
                }
                let v = self.pop_input(inb as usize + best_p);
                let fr = self.crit_fire_rec();
                self.emit_now(outb, v, fr);
                true
            }
            OpCode::Eta => {
                if !(self.avail(inb as usize)
                    && self.avail(inb as usize + 1)
                    && self.space_for(outb))
                {
                    return false;
                }
                let v = self.pop_input(inb as usize);
                let p = self.pop_input(inb as usize + 1);
                if self.waves_on {
                    self.wave.record_pred(i as usize, self.now, p != 0);
                }
                if p != 0 {
                    let fr = self.crit_fire_rec();
                    self.emit_now(outb, v, fr);
                }
                true
            }
            OpCode::Combine => {
                let nin = op.nin as usize;
                for p in 0..nin {
                    if !self.avail(inb as usize + p) {
                        return false;
                    }
                }
                if !self.space_for(outb) {
                    return false;
                }
                for p in 0..nin {
                    self.pop_input(inb as usize + p);
                }
                let fr = self.crit_fire_rec();
                self.emit_now(outb, 1, fr);
                true
            }
            OpCode::TokenGen { .. } => self.fire_tokengen(i),
            OpCode::Load { .. } => {
                if !(self.avail(inb as usize)
                    && self.avail(inb as usize + 1)
                    && self.avail(inb as usize + 2)
                    && self.space_for(outb)
                    && self.space_for(outb + 1))
                {
                    return false;
                }
                let addr = self.pop_input(inb as usize) as u64;
                let pred = self.pop_input(inb as usize + 1);
                self.pop_input(inb as usize + 2); // token
                if self.waves_on {
                    self.wave.record_pred(i as usize, self.now, pred != 0);
                }
                let fr = self.crit_fire_rec();
                self.reserve(outb);
                self.reserve(outb + 1);
                if pred == 0 {
                    // Nullified: arbitrary value, instant token (§3.1) —
                    // but never overtaking earlier in-flight results.
                    self.emit_mem_or_defer(i, 0, 0, fr);
                    self.emit_mem_or_defer(i, 1, 1, fr);
                } else {
                    self.expect_mem_result(i, 0);
                    self.expect_mem_result(i, 1);
                    self.lsq_queue.push_back(MemRequest {
                        node: NodeId(i),
                        addr,
                        value: 0,
                        is_store: false,
                        enqueued: self.now,
                        fire: fr,
                    });
                }
                true
            }
            OpCode::Store { .. } => {
                if !(self.avail(inb as usize)
                    && self.avail(inb as usize + 1)
                    && self.avail(inb as usize + 2)
                    && self.avail(inb as usize + 3)
                    && self.space_for(outb))
                {
                    return false;
                }
                let addr = self.pop_input(inb as usize) as u64;
                let value = self.pop_input(inb as usize + 1);
                let pred = self.pop_input(inb as usize + 2);
                self.pop_input(inb as usize + 3); // token
                if self.waves_on {
                    self.wave.record_pred(i as usize, self.now, pred != 0);
                }
                let fr = self.crit_fire_rec();
                self.reserve(outb);
                if pred == 0 {
                    self.emit_mem_or_defer(i, 0, 1, fr);
                } else {
                    self.expect_mem_result(i, 0);
                    self.lsq_queue.push_back(MemRequest {
                        node: NodeId(i),
                        addr,
                        value,
                        is_store: true,
                        enqueued: self.now,
                        fire: fr,
                    });
                }
                true
            }
            OpCode::Ret { has_value } => {
                let has_value = *has_value;
                let need = if has_value { 3 } else { 2 };
                for p in 0..need {
                    if !self.avail(inb as usize + p) {
                        return false;
                    }
                }
                let pred = self.pop_input(inb as usize);
                self.pop_input(inb as usize + 1);
                let v = if has_value { Some(self.pop_input(inb as usize + 2)) } else { None };
                if self.waves_on {
                    self.wave.record_pred(i as usize, self.now, pred != 0);
                }
                if pred != 0 {
                    if self.crit_on {
                        let fr = self.crit.fire_rec(self.now);
                        self.crit.ret_rec = Some(fr);
                    }
                    self.result = Some((if has_value { v } else { None }, self.now));
                }
                true
            }
        }
    }

    fn fire_tokengen(&mut self, i: u32) -> bool {
        let inb = self.prog.ops[i as usize].in_base as usize;
        let outb = self.prog.ops[i as usize].out_base;
        let mut progressed = false;
        // Absorb every available input in arrival order: predicates queue
        // up for grants, returned tokens add credits.
        loop {
            let pred_seq = self.front_seq(inb);
            let tok_seq = self.front_seq(inb + 1);
            let pick = match (pred_seq, tok_seq) {
                (None, None) => break,
                (Some(_), None) => 0u16,
                (None, Some(_)) => 1u16,
                (Some(a), Some(b)) => {
                    if a < b {
                        0
                    } else {
                        1
                    }
                }
            };
            if pick == 0 {
                let p = self.pop_input(inb);
                let st = self.tokengen[i as usize].as_mut().expect("tokengen state");
                st.queue.push_back(p != 0);
            } else {
                self.pop_input(inb + 1);
                let st = self.tokengen[i as usize].as_mut().expect("tokengen state");
                st.credits += 1;
            }
            progressed = true;
        }
        // Remember the newest absorb so credit-banked grants in later
        // calls still chain into the path instead of becoming roots.
        if self.crit_on {
            if let Some(b) = self.crit.best() {
                if let Some(st) = self.tokengen[i as usize].as_mut() {
                    st.last_arrival = Some(b);
                }
            }
        }
        // Emit grants in order while credits (or free exit grants) allow
        // and the consumers have space.
        loop {
            let st = self.tokengen[i as usize].as_mut().expect("tokengen state");
            let Some(&needs_credit) = st.queue.front() else { break };
            if needs_credit && st.credits == 0 {
                break;
            }
            if !self.space_for(outb) {
                break;
            }
            let st = self.tokengen[i as usize].as_mut().expect("tokengen state");
            if needs_credit {
                st.credits -= 1;
            }
            st.queue.pop_front();
            let fr = self.crit_grant_rec(i);
            self.emit_now(outb, 1, fr);
            progressed = true;
        }
        progressed
    }

    /// Issues queued memory requests subject to ports and LSQ size.
    fn lsq_issue(&mut self) {
        let prog = self.prog;
        let mut issued = 0;
        while issued < self.config.lsq_ports
            && self.lsq_in_flight < self.config.lsq_size
            && !self.lsq_queue.is_empty()
        {
            let req = self.lsq_queue.pop_front().expect("nonempty queue");
            let snap = (
                self.machine.stats.l1_misses,
                self.machine.stats.l2_misses,
                self.machine.stats.tlb_misses,
            );
            let lat = self.machine.access_cycles(req.addr, req.is_store);
            // Where in the hierarchy did the access land? Recovered from
            // the stats delta: 0 = L1 (or perfect memory), 1 = L2,
            // 2 = DRAM. A TLB miss counts as a miss at its level.
            let missed =
                self.machine.stats.l1_misses != snap.0 || self.machine.stats.tlb_misses != snap.2;
            let level: u8 = if self.machine.stats.l1_misses == snap.0 {
                0
            } else if self.machine.stats.l2_misses == snap.1 {
                1
            } else {
                2
            };
            if let Some(prof) = self.prof.as_mut() {
                // Port contention: cycles the request sat queued.
                prof[req.node.index()]
                    .add_stall(StallCause::LsqPort, self.now.saturating_sub(req.enqueued));
            }
            // An LSQ-order self-edge when the request sat queued behind
            // ports/occupancy: the wait is the LSQ's fault, not the input's.
            let mut fire = req.fire;
            if self.crit_on {
                self.crit.timeline.issue(self.now, level);
                if self.now > req.enqueued {
                    fire = self.crit.push_rec(req.node.0, fire, EdgeClass::LsqOrder, self.now);
                }
            }
            if req.is_store {
                let ty = match &prog.ops[req.node.index()].code {
                    OpCode::Store { ty } => ty,
                    _ => unreachable!("store request from non-store"),
                };
                self.machine.store(req.addr, ty, req.value);
                // Token as soon as the store is ordered (§3.2: "the token
                // can be generated before memory has been updated"). The
                // store's memory latency is deliberately absent from the
                // path: nothing downstream waits on the write completing.
                let ft = if self.crit_on {
                    self.crit.push_rec(req.node.0, fire, EdgeClass::Token, self.now + 1)
                } else {
                    fire
                };
                self.complete_mem(req.node.0, 0, 1, self.now + 1, ft);
            } else {
                let ty = match &prog.ops[req.node.index()].code {
                    OpCode::Load { ty } => ty,
                    _ => unreachable!("load request from non-load"),
                };
                let v = self.machine.load(req.addr, ty);
                // Value when the access completes (a memory-latency
                // self-edge, split hit vs. miss); token once ordered.
                let (fv, ft) = if self.crit_on {
                    let cls = if missed { EdgeClass::CacheMiss } else { EdgeClass::MemLat };
                    (
                        self.crit.push_rec(req.node.0, fire, cls, self.now + lat),
                        self.crit.push_rec(req.node.0, fire, EdgeClass::Token, self.now + 1),
                    )
                } else {
                    (fire, fire)
                };
                self.complete_mem(req.node.0, 0, v, self.now + lat, fv);
                self.complete_mem(req.node.0, 1, 1, self.now + 1, ft);
            }
            self.lsq_in_flight += 1;
            self.push_event(self.now + lat, Ev::LsqRelease { level });
            if let Some(tr) = self.trace.as_mut() {
                tr.push(TraceEvent::Mem {
                    node: req.node,
                    cycle: self.now,
                    latency: lat,
                    addr: req.addr,
                    is_store: req.is_store,
                });
                tr.push(TraceEvent::Lsq {
                    cycle: self.now,
                    in_flight: self.lsq_in_flight,
                    queued: self.lsq_queue.len() as u32,
                });
            }
            issued += 1;
        }
    }
}
