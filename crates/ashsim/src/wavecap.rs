//! Cycle-accurate waveform capture: a compressed columnar change-list
//! store fed by the executors' delivery/fire hooks, exportable as VCD.
//!
//! # Capture model
//!
//! When [`SimConfig::waves`](crate::SimConfig) is on, both backends call
//! into a [`WaveState`] at the same five hook points (the sites are
//! mirrored line-for-line between the event interpreter and the compiled
//! executor, like the critpath recorder):
//!
//! - **value** — at delivery, per flat *output* port: recorded only when
//!   the value differs from the last recorded one (a change list, not a
//!   sample list);
//! - **occupancy** — per flat *input* port, on every FIFO push and pop;
//! - **fire** — per node, the cycle of every successful firing;
//! - **stall** — per node, transitions of the classified stall cause
//!   (0 = not stalled, then [`StallCause`] codes), deduplicated;
//! - **pred** — per node with a predicate input (eta, load, store,
//!   return), the popped predicate outcome, deduplicated.
//!
//! Each signal owns one append-only vector ("one change vector per
//! signal"), slot-indexed off the same dense flat-port ids as the
//! `PortFifos` slab — no maps, no per-event allocation beyond the vector
//! growth itself. Because both backends share the pinned `(cycle, seq)`
//! delivery order, their captures are element-identical, and the VCD they
//! render is **byte-identical** (asserted by `tests/waves.rs` across all
//! 16 kernels).
//!
//! # VCD rendering
//!
//! [`Wave::to_vcd`] renders through [`obs::vcd::VcdWriter`] with a scope
//! tree mirroring hyperblocks (`hb0`, `hb1_loop`, …, `global`) and
//! per-node variables named off [`pegasus::name::node_stem`]:
//! `<stem>_out<p>` (64-bit value), `<stem>_in<p>_occ` (8-bit occupancy),
//! `<stem>_fire` (32-bit cumulative fire counter), `<stem>_stall` (3-bit
//! cause code) and `<stem>_pred` (1-bit). One simulator cycle maps to one
//! `1ns` tick.

use std::fmt::Write as _;

use pegasus::{FlatPorts, Graph, NodeId, NodeKind};

use crate::profile::StallCause;

/// Stall-cause code as stored in the stall change lists: 0 = not stalled.
pub fn stall_code(cause: Option<StallCause>) -> u8 {
    match cause {
        None => 0,
        Some(StallCause::DataInput) => 1,
        Some(StallCause::PredInput) => 2,
        Some(StallCause::TokenInput) => 3,
        Some(StallCause::LsqPort) => 4,
        Some(StallCause::OutputSpace) => 5,
    }
}

/// Human label for a stall code (for `cashdbg` and the diagnose tail).
pub fn stall_label(code: u8) -> &'static str {
    match code {
        0 => "ready",
        1 => "data",
        2 => "pred",
        3 => "token",
        4 => "lsq",
        5 => "output",
        _ => "?",
    }
}

/// A completed waveform capture: columnar per-signal change lists.
///
/// Indices follow the simulator's dense port numbering: value lists by
/// flat output-port id, occupancy lists by flat input-port id, the rest
/// by node index. Accessors return an empty slice for out-of-range
/// indices so callers need not special-case waves-off results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Wave {
    pub(crate) out_changes: Vec<Vec<(u64, i64)>>,
    pub(crate) occ_changes: Vec<Vec<(u64, u16)>>,
    pub(crate) fire_cycles: Vec<Vec<u64>>,
    pub(crate) stall_changes: Vec<Vec<(u64, u8)>>,
    pub(crate) pred_changes: Vec<Vec<(u64, u8)>>,
    pub(crate) cycles: u64,
    pub(crate) changes: u64,
}

impl Wave {
    /// Total recorded change-list entries across all signals.
    pub fn num_changes(&self) -> u64 {
        self.changes
    }

    /// Number of signals that recorded at least one change.
    pub fn num_signals(&self) -> usize {
        self.out_changes.iter().filter(|v| !v.is_empty()).count()
            + self.occ_changes.iter().filter(|v| !v.is_empty()).count()
            + self.fire_cycles.iter().filter(|v| !v.is_empty()).count()
            + self.stall_changes.iter().filter(|v| !v.is_empty()).count()
            + self.pred_changes.iter().filter(|v| !v.is_empty()).count()
    }

    /// Final simulated cycle of the capture.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Value changes of a flat output port: `(cycle, value)`.
    pub fn out_list(&self, oid: usize) -> &[(u64, i64)] {
        self.out_changes.get(oid).map_or(&[], |v| v)
    }

    /// Occupancy changes of a flat input port: `(cycle, depth)`.
    pub fn occ_list(&self, fp: usize) -> &[(u64, u16)] {
        self.occ_changes.get(fp).map_or(&[], |v| v)
    }

    /// Cycles at which a node fired.
    pub fn fire_list(&self, node: usize) -> &[u64] {
        self.fire_cycles.get(node).map_or(&[], |v| v)
    }

    /// Stall-state transitions of a node: `(cycle, code)`, see
    /// [`stall_code`].
    pub fn stall_list(&self, node: usize) -> &[(u64, u8)] {
        self.stall_changes.get(node).map_or(&[], |v| v)
    }

    /// Predicate outcomes popped by a node: `(cycle, 0|1)`, deduplicated.
    pub fn pred_list(&self, node: usize) -> &[(u64, u8)] {
        self.pred_changes.get(node).map_or(&[], |v| v)
    }

    /// The `"waves"` section of `cash-stats-v1` (stable key order, no
    /// whitespace).
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"signals\":{},\"changes\":{},\"cycles\":{}}}",
            self.num_signals(),
            self.changes,
            self.cycles
        )
    }

    /// Renders the capture as a byte-stable VCD document for `g` — the
    /// graph this capture was recorded against.
    pub fn to_vcd(&self, g: &Graph) -> String {
        let flat = FlatPorts::new(g);
        let mut w = obs::vcd::VcdWriter::new("cash-wavecap-v1", "1ns");
        // (list kind, list index, var) triples gathered during declaration
        // so the change pass replays them in declaration order — ties at
        // the same timestamp then resolve identically on every render.
        let mut emits: Vec<(u8, usize, obs::vcd::VarId)> = Vec::new();
        w.scope("cash");
        for (scope, nodes) in pegasus::name::scoped_nodes(g) {
            w.scope(&scope);
            for id in nodes {
                let stem = pegasus::name::node_stem(g, id);
                let kind = g.kind(id);
                for p in 0..kind.num_outputs() {
                    let v = w.var(&format!("{stem}_out{p}"), 64);
                    emits.push((0, flat.out_id(id, p) as usize, v));
                }
                for p in 0..g.num_inputs(id) as u16 {
                    let v = w.var(&format!("{stem}_in{p}_occ"), 8);
                    emits.push((1, flat.in_id(id, p) as usize, v));
                }
                let v = w.var(&format!("{stem}_fire"), 32);
                emits.push((2, id.index(), v));
                let v = w.var(&format!("{stem}_stall"), 3);
                emits.push((3, id.index(), v));
                if matches!(
                    kind,
                    NodeKind::Eta { .. }
                        | NodeKind::Load { .. }
                        | NodeKind::Store { .. }
                        | NodeKind::Return { .. }
                ) {
                    let v = w.var(&format!("{stem}_pred"), 1);
                    emits.push((4, id.index(), v));
                }
            }
            w.upscope();
        }
        w.upscope();
        for (kind, idx, var) in emits {
            match kind {
                0 => {
                    for &(t, val) in self.out_list(idx) {
                        w.change(t, var, val as u64);
                    }
                }
                1 => {
                    for &(t, occ) in self.occ_list(idx) {
                        w.change(t, var, u64::from(occ));
                    }
                }
                2 => {
                    for (i, &t) in self.fire_list(idx).iter().enumerate() {
                        w.change(t, var, i as u64 + 1);
                    }
                }
                3 => {
                    for &(t, code) in self.stall_list(idx) {
                        w.change(t, var, u64::from(code));
                    }
                }
                _ => {
                    for &(t, p) in self.pred_list(idx) {
                        w.change(t, var, u64::from(p));
                    }
                }
            }
        }
        w.render()
    }

    /// The last-32-cycles activity report appended to deadlock diagnoses:
    /// for each blocked node, the recent occupancy changes on its input
    /// ports and the recent value changes on the producing outputs.
    pub(crate) fn tail_report(
        &self,
        g: &Graph,
        flat: &FlatPorts,
        blocked: &[NodeId],
        now: u64,
        window: u64,
    ) -> String {
        let since = now.saturating_sub(window);
        let mut s = format!("wave tail (cycles {since}..{now}) on blocked inputs:\n");
        for &id in blocked {
            for p in 0..g.num_inputs(id) as u16 {
                let fp = flat.in_id(id, p) as usize;
                let occ: Vec<_> = self.occ_list(fp).iter().filter(|(t, _)| *t >= since).collect();
                let Some(input) = g.input(id, p) else { continue };
                let oid = flat.out_id(input.src.node, input.src.port) as usize;
                let vals: Vec<_> = self.out_list(oid).iter().filter(|(t, _)| *t >= since).collect();
                let _ = write!(s, "  {id}.in{p} <- {}.out{}: ", input.src.node, input.src.port);
                if occ.is_empty() && vals.is_empty() {
                    s.push_str("quiet\n");
                    continue;
                }
                s.push_str("occ[");
                for (i, (t, d)) in occ.iter().enumerate() {
                    let _ = write!(s, "{}c{t}:{d}", if i > 0 { " " } else { "" });
                }
                s.push_str("] val[");
                for (i, (t, v)) in vals.iter().enumerate() {
                    let _ = write!(s, "{}c{t}:{v}", if i > 0 { " " } else { "" });
                }
                s.push_str("]\n");
            }
        }
        s
    }
}

/// The live recorder owned by an executor. All hooks are branch-free on
/// the happy path and are only reached behind the executor's single
/// `waves_on` test, so the waves-off cost is one predictable branch per
/// hook site (gated by the `obs_smoke` noise-floor check).
#[derive(Debug, Clone, Default)]
pub(crate) struct WaveState {
    w: Wave,
}

impl WaveState {
    /// Recorder with capacity for the graph's flat geometry.
    pub(crate) fn new(num_out: usize, num_in: usize, nodes: usize) -> WaveState {
        WaveState {
            w: Wave {
                out_changes: vec![Vec::new(); num_out],
                occ_changes: vec![Vec::new(); num_in],
                fire_cycles: vec![Vec::new(); nodes],
                stall_changes: vec![Vec::new(); nodes],
                pred_changes: vec![Vec::new(); nodes],
                cycles: 0,
                changes: 0,
            },
        }
    }

    /// Zero-capacity recorder for waves-off runs; hooks must not be
    /// reached (they would index out of bounds), matching `CritState`'s
    /// discipline.
    pub(crate) fn off() -> WaveState {
        WaveState::default()
    }

    #[inline]
    pub(crate) fn record_out(&mut self, oid: usize, t: u64, value: i64) {
        let list = &mut self.w.out_changes[oid];
        if list.last().map(|&(_, v)| v) != Some(value) {
            list.push((t, value));
            self.w.changes += 1;
        }
    }

    #[inline]
    pub(crate) fn record_occ_push(&mut self, fp: usize, t: u64) {
        let list = &mut self.w.occ_changes[fp];
        let occ = list.last().map_or(0, |&(_, d)| d) + 1;
        list.push((t, occ));
        self.w.changes += 1;
    }

    #[inline]
    pub(crate) fn record_occ_pop(&mut self, fp: usize, t: u64) {
        let list = &mut self.w.occ_changes[fp];
        let occ = list.last().map_or(0, |&(_, d)| d).saturating_sub(1);
        list.push((t, occ));
        self.w.changes += 1;
    }

    #[inline]
    pub(crate) fn record_fire(&mut self, node: usize, t: u64) {
        self.w.fire_cycles[node].push(t);
        self.w.changes += 1;
    }

    #[inline]
    pub(crate) fn record_stall(&mut self, node: usize, t: u64, code: u8) {
        let list = &mut self.w.stall_changes[node];
        if list.last().map_or(0, |&(_, c)| c) != code {
            list.push((t, code));
            self.w.changes += 1;
        }
    }

    #[inline]
    pub(crate) fn record_pred(&mut self, node: usize, t: u64, pred: bool) {
        let list = &mut self.w.pred_changes[node];
        let p = u8::from(pred);
        if list.last().map(|&(_, c)| c) != Some(p) {
            list.push((t, p));
            self.w.changes += 1;
        }
    }

    pub(crate) fn wave(&self) -> &Wave {
        &self.w
    }

    /// Packages the capture at end of run, stamping the final cycle.
    pub(crate) fn into_wave(mut self, cycles: u64) -> Wave {
        self.w.cycles = cycles;
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_changes_deduplicate() {
        let mut st = WaveState::new(1, 1, 1);
        st.record_out(0, 1, 5);
        st.record_out(0, 2, 5);
        st.record_out(0, 3, 6);
        st.record_out(0, 4, 5);
        let w = st.into_wave(10);
        assert_eq!(w.out_list(0), &[(1, 5), (3, 6), (4, 5)]);
        assert_eq!(w.num_changes(), 3);
        assert_eq!(w.cycles(), 10);
    }

    #[test]
    fn occupancy_tracks_depth() {
        let mut st = WaveState::new(0, 1, 0);
        st.record_occ_push(0, 1);
        st.record_occ_push(0, 2);
        st.record_occ_pop(0, 3);
        let w = st.into_wave(3);
        assert_eq!(w.occ_list(0), &[(1, 1), (2, 2), (3, 1)]);
    }

    #[test]
    fn stall_transitions_deduplicate_and_start_ready() {
        let mut st = WaveState::new(0, 0, 1);
        st.record_stall(0, 1, 0); // ready → ready: not a transition
        st.record_stall(0, 2, 1);
        st.record_stall(0, 3, 1);
        st.record_stall(0, 4, 0);
        let w = st.into_wave(4);
        assert_eq!(w.stall_list(0), &[(2, 1), (4, 0)]);
    }

    #[test]
    fn out_of_range_accessors_are_empty() {
        let w = Wave::default();
        assert!(w.out_list(3).is_empty());
        assert!(w.fire_list(0).is_empty());
        assert_eq!(w.num_signals(), 0);
        assert_eq!(w.summary_json(), "{\"signals\":0,\"changes\":0,\"cycles\":0}");
    }

    #[test]
    fn stall_codes_round_trip_labels() {
        assert_eq!(stall_code(None), 0);
        assert_eq!(stall_code(Some(StallCause::OutputSpace)), 5);
        assert_eq!(stall_label(4), "lsq");
    }
}
