//! Scheduling machinery shared by both simulator backends: the channel
//! FIFO slab, the calendar event queue, and the small in-flight record
//! types (deliveries, LSQ requests, pending memory outputs, token
//! generators). The event backend ([`crate::exec`]) and the compiled
//! backend ([`crate::waves`]) must agree bit-for-bit on ordering, so they
//! share these structures instead of reimplementing them.

use pegasus::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// Deliver `value` from output `(node, port)` to all its consumers.
    /// `fire` is the producing firing's critical-path record (`NO_REC`
    /// when recording is off).
    Deliver { node: NodeId, port: u16, value: i64, fire: u32 },
    /// An LSQ slot frees up (`level`: hierarchy depth the access reached,
    /// for the memory timeline).
    LsqRelease { level: u8 },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct MemRequest {
    pub(crate) node: NodeId,
    pub(crate) addr: u64,
    pub(crate) value: i64, // store data
    pub(crate) is_store: bool,
    /// Cycle the request entered the LSQ queue (for port-stall profiling).
    pub(crate) enqueued: u64,
    /// The firing's critical-path record (`NO_REC` when recording is off).
    pub(crate) fire: u32,
}

/// One outstanding output slot of a memory node (see the executors'
/// `mem_out` fields).
#[derive(Debug, Clone, Copy)]
pub(crate) enum PendingOut {
    /// A queued LSQ request will fill this slot when it issues.
    Real,
    /// A nullified firing's instant value (and its critical-path record),
    /// blocked behind a `Real` slot.
    Null(i64, u32),
}

#[derive(Clone)]
pub(crate) struct TokenGenState {
    pub(crate) credits: u64,
    /// Predicates seen but not yet granted, in arrival order. `true`
    /// entries need a credit; `false` entries (the loop's exit wave, whose
    /// operations are nullified) are granted for free so the consumer ring
    /// can drain — the paper's counter reset plays the same role for its
    /// fully-serialized loop model.
    pub(crate) queue: VecDeque<bool>,
    /// Last absorbed input's `(arrival, record, class)` for critical-path
    /// attribution: a grant enabled purely by previously banked credits
    /// still chains to the most recent absorb instead of becoming a path
    /// root (an approximation — the credit that paid for the grant may be
    /// older).
    pub(crate) last_arrival: Option<(u64, u32, u8)>,
}

/// Capacity of the executors' always-on recent-firings ring.
pub(crate) const RECENT_CAP: usize = 64;

/// Orderable wrapper so the overflow heap can hold events (events are not
/// `Ord`; ties are broken by the sequence number next to it).
#[derive(Debug, Clone, Copy)]
pub(crate) struct EvBox(pub(crate) Ev);

impl PartialEq for EvBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for EvBox {}
impl PartialOrd for EvBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Every channel FIFO, in one contiguous slab: port `p` owns the slot
/// range `[p·cap, (p+1)·cap)` as a circular buffer. The reservation
/// discipline bounds every channel at `channel_capacity` entries, so
/// fixed-size slots suffice and the delivery path never allocates; one
/// slab replaces a heap block per port.
#[derive(Clone)]
pub(crate) struct PortFifos {
    pub(crate) cap: usize,
    slots: Vec<(u64, i64)>,
    head: Vec<u32>,
    len: Vec<u32>,
}

impl PortFifos {
    pub(crate) fn new(num_ports: usize, cap: usize) -> PortFifos {
        PortFifos {
            cap,
            slots: vec![(0, 0); num_ports * cap],
            head: vec![0; num_ports],
            len: vec![0; num_ports],
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self, p: usize) -> bool {
        self.len[p] == 0
    }

    #[inline]
    pub(crate) fn len(&self, p: usize) -> usize {
        self.len[p] as usize
    }

    #[inline]
    pub(crate) fn front(&self, p: usize) -> Option<(u64, i64)> {
        if self.len[p] == 0 {
            None
        } else {
            Some(self.slots[p * self.cap + self.head[p] as usize])
        }
    }

    /// Oldest sequence number waiting on port `p`, or `u64::MAX` when the
    /// FIFO is empty — branch-free form of [`Self::front`] for merge
    /// arbitration loops.
    #[inline]
    pub(crate) fn front_seq_or_max(&self, p: usize) -> u64 {
        if self.len[p] == 0 {
            u64::MAX
        } else {
            self.slots[p * self.cap + self.head[p] as usize].0
        }
    }

    /// Pushes `entry` and returns the flat slot index it landed in, so the
    /// critical-path recorder can mirror the ring without duplicating its
    /// head/len state (ring offsets use a conditional subtract, not `%`:
    /// `cap` is a run-time value, so a modulo here is a hardware divide on
    /// the hottest path).
    #[inline]
    pub(crate) fn push_back(&mut self, p: usize, entry: (u64, i64)) -> usize {
        let len = self.len[p] as usize;
        debug_assert!(len < self.cap, "channel over capacity: reservation discipline broken");
        let mut off = self.head[p] as usize + len;
        if off >= self.cap {
            off -= self.cap;
        }
        let at = p * self.cap + off;
        self.slots[at] = entry;
        self.len[p] += 1;
        at
    }

    /// Pops the oldest entry with the flat slot index it came from (see
    /// [`Self::push_back`]).
    #[inline]
    pub(crate) fn pop_front(&mut self, p: usize) -> Option<((u64, i64), usize)> {
        if self.len[p] == 0 {
            return None;
        }
        let head = self.head[p] as usize;
        let at = p * self.cap + head;
        let next = head + 1;
        self.head[p] = (if next == self.cap { 0 } else { next }) as u32;
        self.len[p] -= 1;
        Some((self.slots[at], at))
    }
}

/// Calendar-bucket ring size, in cycles. Covers every ALU latency and the
/// realistic memory hierarchy's worst case (TLB miss + L1 + L2 + DRAM +
/// word gaps ≈ 150 cycles); anything scheduled further out — e.g. a
/// `Perfect { latency }` model with a huge latency — takes the overflow
/// heap, which is correct at any horizon, just not O(1).
pub(crate) const RING: u64 = 256;

/// The simulator's event queue: a calendar of per-cycle buckets with a
/// fallback binary heap for far-future events.
///
/// The previous implementation kept every pending delivery in one
/// `BinaryHeap<Reverse<(cycle, seq, event)>>`: each push/pop paid
/// `O(log n)` three-word comparisons and the sift traffic dominated the
/// scheduler's profile. Almost all events land within a few cycles of
/// `now` (ALU latencies of 1–20, cache hits of 2–8), so a ring of `RING`
/// per-cycle `Vec` buckets makes push O(1) and pop a drain of the current
/// bucket. Bucket `Vec`s and the `due` scratch buffer are recycled, so in
/// steady state the queue performs no allocation at all.
///
/// Ordering contract (must match the old heap exactly): events are
/// processed in `(cycle, seq)` order. Within a bucket, pushes happen in
/// ascending `seq` order, so a bucket drain is already sorted; a sort is
/// needed only on the rare cycle where the overflow heap contributes too.
#[derive(Clone)]
pub(crate) struct EventQueue {
    /// `ring[t % RING]` holds `(t, seq, ev)` entries for cycle `t` (and,
    /// transiently, for `t + k·RING` — filtered on drain).
    ring: Vec<Vec<(u64, u64, Ev)>>,
    /// Events scheduled `RING` or more cycles ahead.
    overflow: BinaryHeap<Reverse<(u64, u64, EvBox)>>,
    /// Entries currently in the ring (not counting `overflow`).
    ring_len: usize,
    /// Cycles `<= drained` have been fully delivered (modulo stragglers
    /// pushed at `t == drained` after the drain, which the next call picks
    /// up because the scan restarts at `drained`).
    drained: u64,
    /// Recycled buffer for [`Self::take_due`].
    scratch: Vec<(u64, u64, Ev)>,
}

impl EventQueue {
    pub(crate) fn new() -> EventQueue {
        EventQueue {
            ring: (0..RING).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            ring_len: 0,
            drained: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules `ev` at cycle `t` with tiebreaker `seq`. `t` must not lie
    /// in the past (callers schedule at `now` or later).
    pub(crate) fn push(&mut self, t: u64, seq: u64, ev: Ev) {
        if t < self.drained + RING {
            self.ring[(t % RING) as usize].push((t, seq, ev));
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse((t, seq, EvBox(ev))));
        }
    }

    /// Removes and returns every event scheduled at cycle `now` or
    /// earlier, in `(cycle, seq)` order. The returned buffer must be
    /// handed back via [`Self::recycle`] after processing.
    pub(crate) fn take_due(&mut self, now: u64) -> Vec<(u64, u64, Ev)> {
        let mut due = std::mem::take(&mut self.scratch);
        let mut from_overflow = false;
        while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
            if t > now {
                break;
            }
            let Reverse((t, s, EvBox(ev))) = self.overflow.pop().expect("peeked");
            due.push((t, s, ev));
            from_overflow = true;
        }
        if self.ring_len > 0 {
            for c in self.drained..=now {
                let slot = &mut self.ring[(c % RING) as usize];
                if slot.is_empty() {
                    continue;
                }
                if slot.iter().all(|&(t, _, _)| t == c) {
                    // Common case: the whole bucket is due; moving it out
                    // keeps the bucket's capacity for reuse.
                    self.ring_len -= slot.len();
                    due.append(slot);
                } else {
                    // A wrapped entry (t = c + k·RING) shares the bucket:
                    // extract only the due ones, preserving order.
                    let before = slot.len();
                    slot.retain(|&e| {
                        if e.0 == c {
                            due.push(e);
                            false
                        } else {
                            true
                        }
                    });
                    self.ring_len -= before - slot.len();
                }
            }
        }
        self.drained = now;
        if from_overflow {
            // Overflow events were prepended; restore global order.
            due.sort_unstable_by_key(|&(t, s, _)| (t, s));
        }
        due
    }

    /// Returns the processed buffer from [`Self::take_due`] for reuse.
    pub(crate) fn recycle(&mut self, mut due: Vec<(u64, u64, Ev)>) {
        due.clear();
        self.scratch = due;
    }

    /// The earliest scheduled cycle, if any events are pending.
    pub(crate) fn next_time(&self) -> Option<u64> {
        let mut best = self.overflow.peek().map(|&Reverse((t, _, _))| t);
        if self.ring_len > 0 {
            // Every ring entry has t in [drained, drained + RING), so the
            // first cycle whose bucket holds a matching entry is the min.
            for k in 0..RING {
                let c = self.drained + k;
                if self.ring[(c % RING) as usize].iter().any(|&(t, _, _)| t == c) {
                    best = Some(best.map_or(c, |b| b.min(c)));
                    break;
                }
            }
        }
        best
    }
}
