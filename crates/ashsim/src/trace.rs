//! Chrome trace-event export (Perfetto / `chrome://tracing`).
//!
//! When [`SimConfig::trace`](crate::SimConfig) is set, the executor records
//! the raw event stream of the run — node firings, memory transactions with
//! their latencies, and LSQ occupancy changes — and
//! [`Trace::to_chrome_json`] renders it in the Chrome trace-event JSON
//! format, loadable directly in [Perfetto](https://ui.perfetto.dev).
//!
//! Layout: one "process" per event family (`circuit`, `memory`), node
//! firings as complete (`"X"`) slices on a per-hyperblock track, memory
//! transactions as slices whose duration is the access latency, and LSQ
//! occupancy as counter (`"C"`) tracks. Timestamps are simulated cycles.
//!
//! The simulator is deterministic and events are appended in scheduler
//! order, so two runs of the same program produce byte-identical JSON —
//! which is what makes golden tests of this exporter possible.

use crate::profile::kind_label;
use pegasus::{Graph, NodeId};
use std::fmt::Write;

/// One recorded simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node fired at `cycle`.
    Fire { node: NodeId, cycle: u64 },
    /// A memory transaction issued at `cycle` occupying `latency` cycles.
    Mem { node: NodeId, cycle: u64, latency: u64, addr: u64, is_store: bool },
    /// LSQ occupancy after a change: requests holding slots and requests
    /// still queued for a port.
    Lsq { cycle: u64, in_flight: u32, queued: u32 },
}

/// The ordered event stream of one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the Chrome trace-event JSON document. `graph` supplies node
    /// labels and hyperblock track assignment; it must be the graph the
    /// simulation ran on.
    pub fn to_chrome_json(&self, graph: &Graph) -> String {
        let mut s = String::with_capacity(64 + self.events.len() * 96);
        s.push_str("{\"traceEvents\":[");
        // Process metadata first so Perfetto names the tracks.
        s.push_str(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":{\"name\":\"circuit\"}},\
             {\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"args\":{\"name\":\"memory\"}}",
        );
        for ev in &self.events {
            s.push(',');
            match *ev {
                TraceEvent::Fire { node, cycle } => {
                    let hb = graph.hb(node);
                    let tid = if hb == u32::MAX { 0 } else { hb + 1 };
                    let _ = write!(
                        s,
                        "{{\"name\":\"{} {}\",\"cat\":\"fire\",\"ph\":\"X\",\"ts\":{cycle},\
                         \"dur\":1,\"pid\":1,\"tid\":{tid},\"args\":{{\"node\":{}}}}}",
                        kind_label(graph.kind(node)),
                        node,
                        node.0,
                    );
                }
                TraceEvent::Mem { node, cycle, latency, addr, is_store } => {
                    let kind = if is_store { "store" } else { "load" };
                    let _ = write!(
                        s,
                        "{{\"name\":\"{kind} {node}\",\"cat\":\"mem\",\"ph\":\"X\",\"ts\":{cycle},\
                         \"dur\":{latency},\"pid\":2,\"tid\":1,\
                         \"args\":{{\"addr\":{addr},\"node\":{}}}}}",
                        node.0,
                    );
                }
                TraceEvent::Lsq { cycle, in_flight, queued } => {
                    let _ = write!(
                        s,
                        "{{\"name\":\"lsq\",\"cat\":\"lsq\",\"ph\":\"C\",\"ts\":{cycle},\
                         \"pid\":2,\"tid\":0,\
                         \"args\":{{\"in_flight\":{in_flight},\"queued\":{queued}}}}}",
                    );
                }
            }
        }
        s.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"schema\":\"cash-trace-v1\"}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfgir::types::Type;
    use pegasus::{NodeKind, Src};

    #[test]
    fn chrome_json_is_well_formed_and_ordered() {
        let mut g = Graph::new();
        let c = g.add_node(NodeKind::Const { value: 1, ty: Type::int(32) }, 0, 0);
        let u = g.add_node(NodeKind::UnOp { op: cfgir::types::UnOp::Neg, ty: Type::int(32) }, 1, 0);
        g.connect(Src::of(c), u, 0);
        let tr = Trace {
            events: vec![
                TraceEvent::Fire { node: u, cycle: 2 },
                TraceEvent::Mem { node: c, cycle: 3, latency: 4, addr: 0x1000, is_store: false },
                TraceEvent::Lsq { cycle: 3, in_flight: 1, queued: 0 },
            ],
        };
        let json = tr.to_chrome_json(&g);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"addr\":4096"));
        assert!(json.contains("cash-trace-v1"));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(json, tr.to_chrome_json(&g));
    }
}
