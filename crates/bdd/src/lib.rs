//! A small reduced-ordered binary decision diagram (ROBDD) package.
//!
//! The CASH compiler reasons about *predicates*: every memory operation in
//! Pegasus carries a controlling predicate, and several of the redundancy
//! eliminations in the paper reduce to boolean questions about predicates —
//! "does the predicate of this store imply the predicate of that later
//! store?" (store-before-store removal, §5.2), "do these stores collectively
//! dominate this load?" (load-after-store removal, §5.3), "is this predicate
//! constant false?" (dead-operation removal, §4.1).
//!
//! This crate provides the boolean engine for those questions. Predicates are
//! built over opaque *variables* (numbered leaf conditions, typically the
//! branch conditions of the original control-flow graph) and combined with
//! the usual connectives. The representation is canonical: two predicates are
//! logically equal iff their [`Bdd`] handles are equal, so implication and
//! tautology checks are cheap.
//!
//! # Examples
//!
//! ```
//! use bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let p = m.var(0);
//! let q = m.var(1);
//! let pq = m.and(p, q);
//! assert!(m.implies(pq, p));
//! assert!(!m.implies(p, pq));
//! let por = m.or(p, q);
//! let nn = m.not(por);
//! let np = m.not(p);
//! let nq = m.not(q);
//! let dm = m.and(np, nq);
//! // De Morgan: !(p|q) == !p & !q — canonical handles are equal.
//! assert_eq!(nn, dm);
//! ```

use std::collections::HashMap;
use std::fmt;

/// A handle to a BDD node owned by a [`BddManager`].
///
/// Handles are canonical within a single manager: two handles compare equal
/// iff they denote the same boolean function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// Returns `true` if this handle is the constant-true function.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Returns `true` if this handle is the constant-false function.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Returns `true` if this handle is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index, useful as a stable map key.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "false"),
            Bdd::TRUE => write!(f, "true"),
            Bdd(i) => write!(f, "bdd#{i}"),
        }
    }
}

/// A decision variable, identified by a dense index. Lower indices are
/// tested first (the variable order is the index order).
pub type Var = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: Var,
    lo: Bdd,
    hi: Bdd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// Owner and allocator of BDD nodes.
///
/// All operations go through the manager; handles from different managers
/// must never be mixed (doing so yields nonsense, not undefined behaviour).
#[derive(Debug, Default)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    apply_cache: HashMap<(Op, Bdd, Bdd), Bdd>,
    not_cache: HashMap<Bdd, Bdd>,
}

impl BddManager {
    /// Creates an empty manager containing only the two constants.
    pub fn new() -> Self {
        let mut m = BddManager {
            nodes: Vec::new(),
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
        };
        // Slots 0 and 1 are the constants; give them sentinel nodes so that
        // node(ix) is always valid.
        m.nodes.push(Node { var: Var::MAX, lo: Bdd::FALSE, hi: Bdd::FALSE });
        m.nodes.push(Node { var: Var::MAX, lo: Bdd::TRUE, hi: Bdd::TRUE });
        m
    }

    /// Number of live (interned) nodes, including the two constants.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    #[inline]
    fn var_of(&self, b: Bdd) -> Var {
        self.nodes[b.0 as usize].var
    }

    fn mk(&mut self, var: Var, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        let n = Node { var, lo, hi };
        if let Some(&b) = self.unique.get(&n) {
            return b;
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(n);
        self.unique.insert(n, b);
        b
    }

    /// The function that is true exactly when variable `v` is true.
    pub fn var(&mut self, v: Var) -> Bdd {
        self.mk(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The function that is true exactly when variable `v` is false.
    pub fn nvar(&mut self, v: Var) -> Bdd {
        self.mk(v, Bdd::TRUE, Bdd::FALSE)
    }

    /// Constant as a BDD.
    pub fn constant(&mut self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Logical negation.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        match a {
            Bdd::FALSE => return Bdd::TRUE,
            Bdd::TRUE => return Bdd::FALSE,
            _ => {}
        }
        if let Some(&r) = self.not_cache.get(&a) {
            return r;
        }
        let n = self.node(a);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(a, r);
        self.not_cache.insert(r, a);
        r
    }

    fn apply(&mut self, op: Op, a: Bdd, b: Bdd) -> Bdd {
        // Terminal cases.
        match op {
            Op::And => {
                if a == b {
                    return a;
                }
                if a.is_false() || b.is_false() {
                    return Bdd::FALSE;
                }
                if a.is_true() {
                    return b;
                }
                if b.is_true() {
                    return a;
                }
            }
            Op::Or => {
                if a == b {
                    return a;
                }
                if a.is_true() || b.is_true() {
                    return Bdd::TRUE;
                }
                if a.is_false() {
                    return b;
                }
                if b.is_false() {
                    return a;
                }
            }
            Op::Xor => {
                if a == b {
                    return Bdd::FALSE;
                }
                if a.is_false() {
                    return b;
                }
                if b.is_false() {
                    return a;
                }
                if a.is_true() {
                    return self.not(b);
                }
                if b.is_true() {
                    return self.not(a);
                }
            }
        }
        // Commutative: normalize operand order for cache hits.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&r) = self.apply_cache.get(&(op, a, b)) {
            return r;
        }
        let (va, vb) = (self.var_of(a), self.var_of(b));
        let v = va.min(vb);
        let (alo, ahi) = if va == v {
            let n = self.node(a);
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (blo, bhi) = if vb == v {
            let n = self.node(b);
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, alo, blo);
        let hi = self.apply(op, ahi, bhi);
        let r = self.mk(v, lo, hi);
        self.apply_cache.insert((op, a, b), r);
        r
    }

    /// Logical conjunction.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(Op::And, a, b)
    }

    /// Logical disjunction.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(Op::Or, a, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.apply(Op::Xor, a, b)
    }

    /// `a & !b` — the part of `a` not covered by `b`.
    pub fn and_not(&mut self, a: Bdd, b: Bdd) -> Bdd {
        let nb = self.not(b);
        self.and(a, nb)
    }

    /// Conjunction over an iterator (true for an empty sequence).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::TRUE;
        for x in items {
            acc = self.and(acc, x);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Disjunction over an iterator (false for an empty sequence).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, items: I) -> Bdd {
        let mut acc = Bdd::FALSE;
        for x in items {
            acc = self.or(acc, x);
            if acc.is_true() {
                break;
            }
        }
        acc
    }

    /// Does `a` imply `b` (i.e. is `a & !b` unsatisfiable)?
    pub fn implies(&mut self, a: Bdd, b: Bdd) -> bool {
        self.and_not(a, b).is_false()
    }

    /// Are `a` and `b` disjoint (never simultaneously true)?
    pub fn disjoint(&mut self, a: Bdd, b: Bdd) -> bool {
        self.and(a, b).is_false()
    }

    /// Evaluates the function under a total assignment.
    pub fn eval(&self, b: Bdd, assignment: &dyn Fn(Var) -> bool) -> bool {
        let mut cur = b;
        while !cur.is_const() {
            let n = self.node(cur);
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur.is_true()
    }

    /// Restricts variable `v` to `value` (Shannon cofactor).
    pub fn restrict(&mut self, b: Bdd, v: Var, value: bool) -> Bdd {
        if b.is_const() {
            return b;
        }
        let n = self.node(b);
        if n.var > v {
            return b; // v does not appear below here
        }
        if n.var == v {
            return if value { n.hi } else { n.lo };
        }
        let lo = self.restrict(n.lo, v, value);
        let hi = self.restrict(n.hi, v, value);
        self.mk(n.var, lo, hi)
    }

    /// The set of variables the function depends on, in ascending order.
    pub fn support(&self, b: Bdd) -> Vec<Var> {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![b];
        let mut visited = std::collections::HashSet::new();
        while let Some(x) = stack.pop() {
            if x.is_const() || !visited.insert(x) {
                continue;
            }
            let n = self.node(x);
            seen.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.into_iter().collect()
    }

    /// One satisfying assignment (as `(var, value)` pairs over a path),
    /// or `None` for the constant-false function.
    pub fn any_sat(&self, b: Bdd) -> Option<Vec<(Var, bool)>> {
        if b.is_false() {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = b;
        while !cur.is_const() {
            let n = self.node(cur);
            if !n.hi.is_false() {
                out.push((n.var, true));
                cur = n.hi;
            } else {
                out.push((n.var, false));
                cur = n.lo;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let mut m = BddManager::new();
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_false());
        assert_eq!(m.constant(true), Bdd::TRUE);
        assert_eq!(m.constant(false), Bdd::FALSE);
        assert_eq!(m.not(Bdd::TRUE), Bdd::FALSE);
    }

    #[test]
    fn var_and_negation_are_distinct() {
        let mut m = BddManager::new();
        let p = m.var(3);
        let np = m.not(p);
        assert_ne!(p, np);
        assert_eq!(m.nvar(3), np);
        assert_eq!(m.not(np), p);
    }

    #[test]
    fn and_or_identities() {
        let mut m = BddManager::new();
        let p = m.var(0);
        assert_eq!(m.and(p, Bdd::TRUE), p);
        assert_eq!(m.and(p, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(p, Bdd::FALSE), p);
        assert_eq!(m.or(p, Bdd::TRUE), Bdd::TRUE);
        assert_eq!(m.and(p, p), p);
        assert_eq!(m.or(p, p), p);
        let np = m.not(p);
        assert_eq!(m.and(p, np), Bdd::FALSE);
        assert_eq!(m.or(p, np), Bdd::TRUE);
    }

    #[test]
    fn canonicity_of_equivalent_formulas() {
        let mut m = BddManager::new();
        let p = m.var(0);
        let q = m.var(1);
        let r = m.var(2);
        // (p & q) | (p & r) == p & (q | r)
        let lhs = {
            let a = m.and(p, q);
            let b = m.and(p, r);
            m.or(a, b)
        };
        let rhs = {
            let a = m.or(q, r);
            m.and(p, a)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn implication() {
        let mut m = BddManager::new();
        let p = m.var(0);
        let q = m.var(1);
        let pq = m.and(p, q);
        let porq = m.or(p, q);
        assert!(m.implies(pq, p));
        assert!(m.implies(pq, porq));
        assert!(m.implies(Bdd::FALSE, p));
        assert!(m.implies(p, Bdd::TRUE));
        assert!(!m.implies(porq, pq));
        assert!(!m.implies(Bdd::TRUE, p));
    }

    #[test]
    fn disjointness() {
        let mut m = BddManager::new();
        let p = m.var(0);
        let np = m.not(p);
        let q = m.var(1);
        assert!(m.disjoint(p, np));
        assert!(!m.disjoint(p, q));
        let pq = m.and(p, q);
        let pnq = m.and_not(p, q);
        assert!(m.disjoint(pq, pnq));
    }

    #[test]
    fn xor_properties() {
        let mut m = BddManager::new();
        let p = m.var(0);
        let q = m.var(1);
        let x = m.xor(p, q);
        assert_eq!(m.xor(x, q), p);
        assert_eq!(m.xor(p, p), Bdd::FALSE);
        let np = m.not(p);
        assert_eq!(m.xor(p, Bdd::TRUE), np);
    }

    #[test]
    fn eval_walks_the_dag() {
        let mut m = BddManager::new();
        let p = m.var(0);
        let q = m.var(1);
        let f = {
            let nq = m.not(q);
            m.or(p, nq)
        }; // p | !q
        assert!(m.eval(f, &|v| v == 0)); // p=1,q=0
        assert!(m.eval(f, &|_| false)); // p=0,q=0 -> !q = 1
        assert!(!m.eval(f, &|v| v == 1)); // p=0,q=1
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = BddManager::new();
        let p = m.var(0);
        let q = m.var(1);
        let f = m.and(p, q);
        assert_eq!(m.restrict(f, 0, true), q);
        assert_eq!(m.restrict(f, 0, false), Bdd::FALSE);
        assert_eq!(m.restrict(f, 1, true), p);
        // Restricting a variable not in the support is identity.
        assert_eq!(m.restrict(f, 7, true), f);
    }

    #[test]
    fn support_and_sat() {
        let mut m = BddManager::new();
        let p = m.var(2);
        let q = m.var(5);
        let f = m.and(p, q);
        assert_eq!(m.support(f), vec![2, 5]);
        assert_eq!(m.support(Bdd::TRUE), Vec::<Var>::new());
        let sat = m.any_sat(f).unwrap();
        assert!(sat.contains(&(2, true)) && sat.contains(&(5, true)));
        assert!(m.any_sat(Bdd::FALSE).is_none());
    }

    #[test]
    fn and_or_all() {
        let mut m = BddManager::new();
        let vs: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let all = m.and_all(vs.iter().copied());
        for &v in &vs {
            assert!(m.implies(all, v));
        }
        let any = m.or_all(vs.iter().copied());
        for &v in &vs {
            assert!(m.implies(v, any));
        }
        assert_eq!(m.and_all(std::iter::empty()), Bdd::TRUE);
        assert_eq!(m.or_all(std::iter::empty()), Bdd::FALSE);
    }

    #[test]
    fn store_postdominance_pattern() {
        // The §5.2 pattern: an earlier store with predicate p under a branch,
        // a later unconditional store (predicate true). The earlier predicate
        // implies the later one, so after and-ing with its negation it dies.
        let mut m = BddManager::new();
        let p = m.var(0);
        let later = Bdd::TRUE;
        assert!(m.implies(p, later));
        let adjusted = m.and_not(p, later);
        assert!(adjusted.is_false());
    }

    #[test]
    fn collective_domination_pattern() {
        // The §5.3 pattern: two stores under p and !p collectively dominate a
        // load with predicate true: the residual load predicate is false.
        let mut m = BddManager::new();
        let p = m.var(0);
        let np = m.not(p);
        let covered = m.or(p, np);
        let load_pred = Bdd::TRUE;
        let residual = m.and_not(load_pred, covered);
        assert!(residual.is_false());
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized testing: formulas are generated from a
    //! seeded xorshift PRNG, so failures are reproducible without any
    //! external property-testing dependency.
    use super::*;

    /// A tiny formula AST for round-trip testing against direct evaluation.
    #[derive(Debug, Clone)]
    enum Formula {
        Var(u32),
        Not(Box<Formula>),
        And(Box<Formula>, Box<Formula>),
        Or(Box<Formula>, Box<Formula>),
        Xor(Box<Formula>, Box<Formula>),
    }

    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            // xorshift64*: deterministic, seed-stable across platforms.
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn gen_formula(rng: &mut Rng, depth: u32) -> Formula {
        let choice = if depth == 0 { 0 } else { rng.below(9) };
        match choice {
            0..=3 => Formula::Var(rng.below(6) as u32),
            4 => Formula::Not(Box::new(gen_formula(rng, depth - 1))),
            5 | 6 => Formula::And(
                Box::new(gen_formula(rng, depth - 1)),
                Box::new(gen_formula(rng, depth - 1)),
            ),
            7 => Formula::Or(
                Box::new(gen_formula(rng, depth - 1)),
                Box::new(gen_formula(rng, depth - 1)),
            ),
            _ => Formula::Xor(
                Box::new(gen_formula(rng, depth - 1)),
                Box::new(gen_formula(rng, depth - 1)),
            ),
        }
    }

    fn build(m: &mut BddManager, f: &Formula) -> Bdd {
        match f {
            Formula::Var(v) => m.var(*v),
            Formula::Not(a) => {
                let x = build(m, a);
                m.not(x)
            }
            Formula::And(a, b) => {
                let (x, y) = (build(m, a), build(m, b));
                m.and(x, y)
            }
            Formula::Or(a, b) => {
                let (x, y) = (build(m, a), build(m, b));
                m.or(x, y)
            }
            Formula::Xor(a, b) => {
                let (x, y) = (build(m, a), build(m, b));
                m.xor(x, y)
            }
        }
    }

    fn eval_direct(f: &Formula, env: u32) -> bool {
        match f {
            Formula::Var(v) => env & (1 << v) != 0,
            Formula::Not(a) => !eval_direct(a, env),
            Formula::And(a, b) => eval_direct(a, env) && eval_direct(b, env),
            Formula::Or(a, b) => eval_direct(a, env) || eval_direct(b, env),
            Formula::Xor(a, b) => eval_direct(a, env) ^ eval_direct(b, env),
        }
    }

    #[test]
    fn bdd_matches_truth_table() {
        let mut rng = Rng(0x5eed_0001);
        for case in 0..256 {
            let f = gen_formula(&mut rng, 5);
            let mut m = BddManager::new();
            let b = build(&mut m, &f);
            for env in 0u32..64 {
                let expect = eval_direct(&f, env);
                let got = m.eval(b, &|v| env & (1 << v) != 0);
                assert_eq!(expect, got, "case {case}, env={env:#b}, formula {f:?}");
            }
        }
    }

    #[test]
    fn equivalent_formulas_share_handles() {
        // f | f == f, f & true == f, !(!f) == f
        let mut rng = Rng(0x5eed_0002);
        for case in 0..256 {
            let f = gen_formula(&mut rng, 5);
            let mut m = BddManager::new();
            let b = build(&mut m, &f);
            let orr = m.or(b, b);
            assert_eq!(orr, b, "case {case}");
            let andt = m.and(b, Bdd::TRUE);
            assert_eq!(andt, b, "case {case}");
            let nn = m.not(b);
            let nnn = m.not(nn);
            assert_eq!(nnn, b, "case {case}");
        }
    }

    #[test]
    fn implication_is_reflexive_and_monotone() {
        let mut rng = Rng(0x5eed_0003);
        for case in 0..128 {
            let f = gen_formula(&mut rng, 5);
            let g = gen_formula(&mut rng, 5);
            let mut m = BddManager::new();
            let a = build(&mut m, &f);
            let b = build(&mut m, &g);
            assert!(m.implies(a, a), "case {case}");
            let ab = m.and(a, b);
            assert!(m.implies(ab, a), "case {case}");
            assert!(m.implies(ab, b), "case {case}");
            let aob = m.or(a, b);
            assert!(m.implies(a, aob), "case {case}");
        }
    }
}
