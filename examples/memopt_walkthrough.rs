//! The Section 2 walkthrough: the paper's motivating example, where only
//! CASH (and one of seven commercial compilers) removes all the useless
//! memory traffic through the `a[i]` temporary.
//!
//! ```c
//! void f(unsigned *p, unsigned a[], int i) {
//!     if (p) a[i] += *p;
//!     else   a[i] = 1;
//!     a[i] <<= a[i+1];
//! }
//! ```
//!
//! The program uses `a[i]` as a temporary: two stores and one load of it
//! are redundant. The walkthrough shows the Figure 1 rewriting sequence:
//! (A→B) token edges between `a[i]` and `a[i+1]` dissolve by symbolic
//! disambiguation; (B→C) the load forwards from the two stores through a
//! decoded mux; (C→D) the stores die because the final store post-dominates
//! them.
//!
//! Run with `cargo run --example memopt_walkthrough`.

use cash::{Compiler, OptConfig, OptLevel, SimConfig};

const SOURCE: &str = "
    unsigned a[8];
    unsigned pv;      /* what *p points to when non-null */

    void f(int p, int i) {
        if (p) a[i] += pv;
        else a[i] = 1;
        a[i] <<= a[i+1];
    }

    int main(int p, int i) {
        f(p, i);
        return a[i];
    }";

fn main() -> Result<(), cash::Error> {
    // The baseline: the classical-compiler stand-in that keeps program
    // order between memory accesses.
    let baseline = Compiler::new().level(OptLevel::None).compile(SOURCE)?;
    // Full CASH.
    let cash = Compiler::new().level(OptLevel::Full).compile(SOURCE)?;

    let (bl, bs) = baseline.static_memory_ops();
    let (ol, os) = cash.static_memory_ops();
    println!("                     loads  stores");
    println!("baseline (\"gcc\"):      {bl}      {bs}");
    println!("CASH full:             {ol}      {os}");
    println!();
    println!("removed {} loads and {} stores of the a[i] temporary", bl - ol, bs - os);

    // The paper's claim: two stores and at least one load disappear.
    assert!(bs - os >= 2, "expected both intermediate stores gone");
    assert!(bl - ol >= 1, "expected the a[i] reload gone");

    // Show what each optimization stage contributes.
    let stages: [(&str, OptConfig); 3] = [
        ("  + rw-set build", OptLevel::Basic.config()),
        ("  + disambiguation", OptLevel::Medium.config()),
        ("  + redundancy elim", OptLevel::Full.config()),
    ];
    println!("\nper-stage static memory operations:");
    println!("  baseline            {bl} loads, {bs} stores");
    for (name, cfg) in stages {
        let p = Compiler::new().config(cfg).compile(SOURCE)?;
        let (l, s) = p.static_memory_ops();
        println!("{name:<22}{l} loads, {s} stores");
    }

    // And the programs agree, of course.
    for args in [[1i64, 2], [0, 3], [5, 0]] {
        let r0 = baseline.simulate(&args, &SimConfig::perfect())?;
        let r1 = cash.simulate(&args, &SimConfig::perfect())?;
        assert_eq!(r0.ret, r1.ret, "args {args:?}");
        println!(
            "f({}, {}) -> {:<12} baseline {} cycles, optimized {} cycles",
            args[0],
            args[1],
            format!("{:?}", r1.ret),
            r0.cycles,
            r1.cycles
        );
    }
    Ok(())
}
