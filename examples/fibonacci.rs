//! The Figure 2 program: the iterative Fibonacci function, whose Pegasus
//! representation is three hyperblocks with merge/eta loops for the
//! loop-carried scalars. Being all-scalar, it compiles to a circuit with
//! zero memory operations.
//!
//! Run with `cargo run --example fibonacci` (pass `--dot` to dump the
//! circuit in Graphviz format).

use cash::{Compiler, SimConfig};

const SOURCE: &str = "
    int main(int k) {
        int a = 0;
        int b = 1;
        while (k != 0) {
            int tmp = a;
            a = b;
            b = tmp + b;
            k--;
        }
        return a;
    }";

fn main() -> Result<(), cash::Error> {
    let program = Compiler::new().compile(SOURCE)?;
    if std::env::args().any(|a| a == "--dot") {
        println!("{}", program.to_dot());
        return Ok(());
    }
    println!(
        "fib circuit: {} nodes, {:?} memory operations",
        program.circuit_size(),
        program.graph.count_memory_ops()
    );
    assert_eq!(program.graph.count_memory_ops(), (0, 0));

    let mut expect = (0i64, 1i64);
    for k in 0..20 {
        let r = program.simulate(&[k], &SimConfig::perfect())?;
        println!("fib({k:2}) = {:>6} in {:>4} cycles", r.ret.unwrap(), r.cycles);
        assert_eq!(r.ret, Some(expect.0));
        expect = (expect.1, expect.0 + expect.1);
    }
    Ok(())
}
