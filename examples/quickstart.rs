//! Quickstart: compile a small C kernel to a spatial circuit, optimize it,
//! and run it on the self-timed simulator.
//!
//! Run with `cargo run --example quickstart`.

use cash::{Compiler, MemSystem, OptLevel, SimConfig};

fn main() -> Result<(), cash::Error> {
    let source = "
        int a[16];

        int main(int n) {
            for (int i = 0; i < n; i++)
                a[i] = i * i;
            int acc = 0;
            for (int i = 0; i < n; i++)
                acc += a[i];
            return acc;
        }";

    // Compile at full optimization.
    let program = Compiler::new().level(OptLevel::Full).compile(source)?;
    println!("circuit: {} nodes", program.circuit_size());
    let (loads0, stores0) = program.static_unoptimized;
    let (loads1, stores1) = program.static_memory_ops();
    println!("static loads:  {loads0} -> {loads1}");
    println!("static stores: {stores0} -> {stores1}");
    println!(
        "optimizer: {} token edges removed, {} loops pipelined, {} token generators",
        program.report.token_edges_removed,
        program.report.loops_pipelined,
        program.report.token_gens
    );

    // Run on perfect memory and on the realistic hierarchy of §7.3.
    for (name, cfg) in [
        ("perfect memory", SimConfig::perfect()),
        ("L1/L2/DRAM", SimConfig { mem: MemSystem::default(), ..SimConfig::default() }),
    ] {
        let r = program.simulate(&[12], &cfg)?;
        println!(
            "{name}: returned {:?} in {} cycles ({} loads, {} stores)",
            r.ret, r.cycles, r.stats.loads, r.stats.stores
        );
        assert_eq!(r.ret, Some((0..12).map(|i| i * i).sum()));
    }
    Ok(())
}
