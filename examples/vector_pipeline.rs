//! The Figure 10 producer/consumer pattern: a loop that reads a source
//! array, computes, and writes a destination array.
//!
//! With coarse synchronization the reads and writes of consecutive
//! iterations interleave through one token ring. With fine-grained
//! synchronization the source reads and destination writes live in
//! separate rings that slip independently — the producer runs ahead and
//! fills the computation pipeline.
//!
//! Run with `cargo run --example vector_pipeline`.

use cash::{Compiler, MemSystem, OptLevel, SimConfig};

const SOURCE: &str = "
    int src[256];
    int dst[256];

    int main(int n) {
        for (int i = 0; i < n; i++)
            src[i] = i * 7 + 3;
        for (int i = 0; i < n; i++)
            dst[i] = (src[i] * 5 + 1) >> 1;
        int acc = 0;
        for (int i = 0; i < n; i++)
            acc += dst[i];
        return acc;
    }";

fn main() -> Result<(), cash::Error> {
    let serial = Compiler::new().level(OptLevel::Basic).compile(SOURCE)?;
    let pipelined = Compiler::new().level(OptLevel::Full).compile(SOURCE)?;
    println!(
        "optimizer created {} extra rings across {} loops",
        pipelined.report.rings_created, pipelined.report.loops_pipelined
    );

    println!("\nmemory system        n   serial  pipelined  speedup");
    for (name, mem) in
        [("perfect", MemSystem::Perfect { latency: 2 }), ("L1/L2/DRAM", MemSystem::default())]
    {
        for n in [64i64, 192] {
            let cfg = SimConfig { mem: mem.clone(), ..SimConfig::default() };
            let r0 = serial.simulate(&[n], &cfg)?;
            let r1 = pipelined.simulate(&[n], &cfg)?;
            assert_eq!(r0.ret, r1.ret);
            println!(
                "{name:<16} {n:>5}  {:>7}  {:>9}  {:>6.2}x",
                r0.cycles,
                r1.cycles,
                r0.cycles as f64 / r1.cycles as f64
            );
        }
    }
    Ok(())
}
