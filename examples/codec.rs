//! A full ADPCM-style codec kernel — the shape of the paper's `adpcm_e`
//! benchmark: a bit-twiddling inner loop with a small adaptive state,
//! table lookups in immutable data, and streaming array traffic.
//!
//! Run with `cargo run --example codec`.

use cash::{Compiler, OptLevel, SimConfig};

const SOURCE: &str = "
    const int step_tab[16] = {7, 8, 9, 10, 11, 12, 13, 14,
                              16, 17, 19, 21, 23, 25, 28, 31};
    const int index_adj[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

    int pcm[128];
    int code[128];
    int decoded[128];

    void encode(int n) {
        int pred = 0;
        int index = 0;
        for (int i = 0; i < n; i++) {
            int step = step_tab[index & 15];
            int diff = pcm[i] - pred;
            int sign = 0;
            if (diff < 0) { sign = 8; diff = -diff; }
            int delta = 0;
            if (diff >= step) { delta = 4; diff -= step; }
            if (diff >= (step >> 1)) { delta |= 2; diff -= step >> 1; }
            if (diff >= (step >> 2)) { delta |= 1; }
            code[i] = delta | sign;
            int change = delta * step >> 2;
            if (sign) pred -= change; else pred += change;
            index += index_adj[delta & 7];
            if (index < 0) index = 0;
            if (index > 15) index = 15;
        }
    }

    void decode(int n) {
        int pred = 0;
        int index = 0;
        for (int i = 0; i < n; i++) {
            int step = step_tab[index & 15];
            int delta = code[i] & 7;
            int sign = code[i] & 8;
            int change = delta * step >> 2;
            if (sign) pred -= change; else pred += change;
            decoded[i] = pred;
            index += index_adj[delta];
            if (index < 0) index = 0;
            if (index > 15) index = 15;
        }
    }

    int main(int n) {
        for (int i = 0; i < n; i++)
            pcm[i] = ((i * 37) & 63) - 32;
        encode(n);
        decode(n);
        int err = 0;
        for (int i = 0; i < n; i++) {
            int d = pcm[i] - decoded[i];
            if (d < 0) d = -d;
            err += d;
        }
        return err;
    }";

fn main() -> Result<(), cash::Error> {
    println!("level   circuit  loads stores   cycles   dyn-loads dyn-stores");
    let mut last = None;
    for level in [OptLevel::None, OptLevel::Medium, OptLevel::Full] {
        let p = Compiler::new().level(level).compile(SOURCE)?;
        let (l, s) = p.static_memory_ops();
        let r = p.simulate(&[96], &SimConfig::default())?;
        println!(
            "{:<7} {:>7}  {:>5} {:>6}  {:>7}   {:>9} {:>10}",
            level.to_string(),
            p.circuit_size(),
            l,
            s,
            r.cycles,
            r.stats.loads,
            r.stats.stores
        );
        if let Some(prev) = last {
            assert_eq!(prev, r.ret, "levels must agree");
        }
        last = Some(r.ret);
    }
    println!("\ntotal |pcm - decoded| error over 96 samples: {:?}", last.unwrap());
    Ok(())
}
