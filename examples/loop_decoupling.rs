//! Loop decoupling (§6.3, Figures 15–17): `a[i] = a[i] + a[i+3]`.
//!
//! Dependence analysis finds a fixed distance of 3 iterations between the
//! far load `a[i+3]` and the store `a[i]`. The optimizer slices the loop
//! into two independent rings — the `a[i+3]` load loop and the
//! `a[i]`-update loop — joined by a token generator `tk(3)`: the update
//! loop may run at most 3 iterations ahead of the far-load loop, and the
//! far-load loop may slip arbitrarily far ahead.
//!
//! Run with `cargo run --example loop_decoupling`.

use cash::{Compiler, OptLevel, SimConfig};

const SOURCE: &str = "
    int a[131];

    int main(int n) {
        for (int i = 0; i < n; i++)
            a[i] = a[i] + a[i+3];
        int acc = 0;
        for (int i = 0; i < n; i++)
            acc += a[i];
        return acc;
    }";

fn reference(n: usize) -> i64 {
    let mut a = vec![0i64; 131];
    for (i, v) in a.iter_mut().enumerate() {
        *v = 0;
        let _ = i;
    }
    for i in 0..n {
        a[i] += a[i + 3];
    }
    a[..n].iter().sum()
}

fn main() -> Result<(), cash::Error> {
    let serial = Compiler::new().level(OptLevel::Medium).compile(SOURCE)?;
    let decoupled = Compiler::new().level(OptLevel::Full).compile(SOURCE)?;

    println!(
        "serial circuit: {} token generators; decoupled: {}",
        serial.graph.count_token_gens(),
        decoupled.graph.count_token_gens()
    );
    assert!(decoupled.graph.count_token_gens() >= 1, "tk(3) expected");

    println!("\n   n   serial-cycles  decoupled-cycles  speedup");
    for n in [16i64, 32, 64, 128] {
        let r0 = serial.simulate(&[n], &SimConfig::default())?;
        let r1 = decoupled.simulate(&[n], &SimConfig::default())?;
        assert_eq!(r0.ret, r1.ret, "results must agree at n={n}");
        assert_eq!(r0.ret, Some(reference(n as usize)), "reference check");
        println!(
            "{n:>4}   {:>12}  {:>16}  {:>6.2}x",
            r0.cycles,
            r1.cycles,
            r0.cycles as f64 / r1.cycles as f64
        );
    }
    println!("\n(the decoupled loop hides the far-load latency: the update");
    println!(" ring trails at a bounded slip of 3 iterations)");
    Ok(())
}
