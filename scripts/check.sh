#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Usage: scripts/check.sh [--fix]   (--fix applies rustfmt instead of checking)
set -euo pipefail
cd "$(dirname "$0")/.."

FMT_ARGS=(--check)
if [[ "${1:-}" == "--fix" ]]; then
    FMT_ARGS=()
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cashlint (static-analysis gate: every kernel at every opt level)"
./target/release/cashlint

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt ${FMT_ARGS[*]:-(write)}"
cargo fmt --all -- "${FMT_ARGS[@]+"${FMT_ARGS[@]}"}"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

# Blocking: the observability runtime must be close to free. The smoke
# interleaves recording-on and recording-off runs of the perf_smoke
# kernels in one process and gates on the min-of-k wall-time delta.
echo "==> obs overhead smoke (blocking, <3% budget)"
./target/release/obs_smoke

# Non-blocking: surface simulator throughput in the log so hot-path
# regressions are visible at review time without gating on machine speed.
echo "==> perf smoke (informational)"
./target/release/perf_smoke || echo "perf smoke failed (non-blocking)"

# Non-blocking: export the merged compiler+simulator Perfetto timeline
# for a Figure 19 kernel (CI uploads target/obs/ as an artifact).
echo "==> cashtrace merged Perfetto trace (informational)"
./target/release/cashtrace || echo "cashtrace failed (non-blocking)"

# Non-blocking: regenerate the BENCH telemetry in target/bench-fresh and
# diff it against the committed files at a ±10% sim.cycles threshold, so a
# perf regression is visible in the log (CI uploads the fresh files as
# artifacts). Warn-only: cycle counts can shift for legitimate reasons —
# bless by copying the fresh files over the committed ones.
echo "==> bench diff vs committed BENCH_*.json (informational)"
mkdir -p target/bench-fresh
(cd target/bench-fresh \
    && ../../target/release/fig18_memops > /dev/null \
    && ../../target/release/fig19_speedup > /dev/null) \
    || echo "bench regeneration failed (non-blocking)"
for f in BENCH_fig18.json BENCH_fig19.json; do
    if [[ -f "$f" && -f "target/bench-fresh/$f" ]]; then
        ./target/release/bench_diff "$f" "target/bench-fresh/$f" --threshold 10 --wall \
            || echo "bench_diff: $f regressed past +/-10% (non-blocking)"
    fi
done

# Non-blocking: append this regeneration's headline numbers (summed
# sim.cycles / sim.us per figure) to the local trajectory file and print
# the trend, so drift across gate runs is visible, not just drift against
# the committed baseline.
fresh=()
for f in BENCH_fig18.json BENCH_fig19.json; do
    [[ -f "target/bench-fresh/$f" ]] && fresh+=("target/bench-fresh/$f")
done
if [[ ${#fresh[@]} -gt 0 ]]; then
    ./target/release/bench_diff --record BENCH_history.jsonl "${fresh[@]}" \
        && ./target/release/bench_diff --history BENCH_history.jsonl \
        || echo "bench history recording failed (non-blocking)"
fi

# Non-blocking: export a GTKWave-viewable waveform for a Figure 19 kernel
# (CI uploads target/waves/ as an artifact).
echo "==> cashwave VCD export (informational)"
./target/release/cashwave g721_e || echo "cashwave failed (non-blocking)"

echo "OK: build, cashlint, tests, fmt and clippy all clean"
