#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Usage: scripts/check.sh [--fix]   (--fix applies rustfmt instead of checking)
set -euo pipefail
cd "$(dirname "$0")/.."

FMT_ARGS=(--check)
if [[ "${1:-}" == "--fix" ]]; then
    FMT_ARGS=()
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cashlint (static-analysis gate: every kernel at every opt level)"
./target/release/cashlint

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt ${FMT_ARGS[*]:-(write)}"
cargo fmt --all -- "${FMT_ARGS[@]+"${FMT_ARGS[@]}"}"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

# Non-blocking: surface simulator throughput in the log so hot-path
# regressions are visible at review time without gating on machine speed.
echo "==> perf smoke (informational)"
./target/release/perf_smoke || echo "perf smoke failed (non-blocking)"

# Non-blocking: regenerate the BENCH telemetry in target/bench-fresh and
# diff it against the committed files at a ±10% sim.cycles threshold, so a
# perf regression is visible in the log (CI uploads the fresh files as
# artifacts). Warn-only: cycle counts can shift for legitimate reasons —
# bless by copying the fresh files over the committed ones.
echo "==> bench diff vs committed BENCH_*.json (informational)"
mkdir -p target/bench-fresh
(cd target/bench-fresh \
    && ../../target/release/fig18_memops > /dev/null \
    && ../../target/release/fig19_speedup > /dev/null) \
    || echo "bench regeneration failed (non-blocking)"
for f in BENCH_fig18.json BENCH_fig19.json; do
    if [[ -f "$f" && -f "target/bench-fresh/$f" ]]; then
        ./target/release/bench_diff "$f" "target/bench-fresh/$f" --threshold 10 \
            || echo "bench_diff: $f regressed past +/-10% (non-blocking)"
    fi
done

echo "OK: build, cashlint, tests, fmt and clippy all clean"
