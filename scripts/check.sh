#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Usage: scripts/check.sh [--fix]   (--fix applies rustfmt instead of checking)
set -euo pipefail
cd "$(dirname "$0")/.."

FMT_ARGS=(--check)
if [[ "${1:-}" == "--fix" ]]; then
    FMT_ARGS=()
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cashlint (static-analysis gate: every kernel at every opt level)"
./target/release/cashlint

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt ${FMT_ARGS[*]:-(write)}"
cargo fmt --all -- "${FMT_ARGS[@]+"${FMT_ARGS[@]}"}"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

# Non-blocking: surface simulator throughput in the log so hot-path
# regressions are visible at review time without gating on machine speed.
echo "==> perf smoke (informational)"
./target/release/perf_smoke || echo "perf smoke failed (non-blocking)"

echo "OK: build, cashlint, tests, fmt and clippy all clean"
