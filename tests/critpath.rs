//! Sanity cross-checks for the critical-path engine: on a hand-built
//! straight-line chain the path must be the full data chain, and the token
//! serialization that `token_removal` eliminates (the paper's Figure 5)
//! must drop off the path at `Full`.

use cash::{Compiler, EdgeClass, OptLevel, Program, SimConfig, SimResult};
use cfgir::types::{Type, UnOp};
use cfgir::Module;
use pegasus::{NodeKind, Src, VClass};

fn crit_cfg() -> SimConfig {
    SimConfig::perfect().with_critpath(true)
}

/// A 10-deep unary chain between a constant and the return: every cycle of
/// the run belongs to the data class, and the path visits each chain node
/// exactly once — the dynamic path *is* the static chain.
#[test]
fn straight_line_chain_is_the_whole_path() {
    const DEPTH: usize = 10;
    let module = Module::new();
    let mut g = pegasus::Graph::new();
    let tok = g.add_node(NodeKind::InitialToken, 0, 0);
    let ptrue = g.const_bool(true, 0);
    let head = g.add_node(NodeKind::Const { value: 5, ty: Type::int(32) }, 0, 0);
    // Gate the constant through an eta: etas are dynamic, so the chain
    // below is real work, not a sticky (run-time constant) subgraph the
    // executor folds at initialization.
    let gate = g.add_node(NodeKind::Eta { vc: VClass::Data, ty: Type::int(32) }, 2, 0);
    g.connect(Src::of(head), gate, 0);
    g.connect(Src::of(ptrue), gate, 1);
    let mut prev = gate;
    let mut chain = Vec::new();
    for _ in 0..DEPTH {
        let n = g.add_node(NodeKind::UnOp { op: UnOp::Neg, ty: Type::int(32) }, 1, 0);
        g.connect(Src::of(prev), n, 0);
        chain.push(n);
        prev = n;
    }
    let ret = g.add_node(NodeKind::Return { has_value: true, ty: Type::int(32) }, 3, 0);
    g.connect(Src::of(ptrue), ret, 0);
    g.connect(Src::of(tok), ret, 1);
    g.connect(Src::of(prev), ret, 2);

    let mut machine = ashsim::Machine::new(&module, ashsim::MemSystem::Perfect { latency: 2 });
    let r = ashsim::simulate(&g, &mut machine, &[], &crit_cfg()).unwrap();
    assert_eq!(r.ret, Some(5), "an even number of negations is the identity");
    let crit = r.crit.as_ref().expect("critpath enabled");

    // Every cycle is a data-chain cycle; nothing else can be critical.
    assert_eq!(crit.attributed_total(), r.cycles - crit.start);
    assert_eq!(crit.class_cycles(EdgeClass::Data), crit.attributed_total());
    for c in EdgeClass::ALL {
        if c != EdgeClass::Data {
            assert_eq!(crit.class_cycles(c), 0, "{} cycles on a pure data chain", c.label());
        }
    }
    // The path visits each chain node exactly once, and nothing off-chain.
    for &n in &chain {
        assert_eq!(crit.node_counts[n.index()], 1, "chain node {n} visited once");
    }
    assert_eq!(crit.node_counts[gate.index()], 1, "the gating eta is the path root");
    assert_eq!(crit.node_counts[ret.index()], 1);
    assert_eq!(crit.node_counts[ptrue.index()], 0, "sticky const is not an event");
    // One unit-latency step per chain link, plus the return.
    assert_eq!(r.cycles, DEPTH as u64, "each Neg adds one cycle");
    assert_eq!(crit.path_len, DEPTH as u64 + 2, "root + chain + return");
}

/// The paper's Figure 5 shape: interleaved stores to two provably-disjoint
/// globals. At `None` the stores serialize through token edges that sit on
/// the critical path; `token_removal` at `Full` deletes exactly those
/// edges, so memory-to-memory token steps disappear from the path.
#[test]
fn token_removal_takes_token_edges_off_the_path() {
    const SRC: &str = "
        int a[2]; int b[2];
        int main(int n) {
            a[0] = n;
            b[0] = n + 1;
            a[1] = n + 2;
            b[1] = n + 3;
            return a[0] + b[1];
        }";
    let run = |level: OptLevel| -> (Program, SimResult) {
        let p = Compiler::new().level(level).compile(SRC).unwrap();
        let r = p.simulate(&[5], &crit_cfg()).unwrap();
        assert_eq!(r.ret, Some(13));
        (p, r)
    };
    // Token-class path steps between two distinct memory operations: the
    // serialization the optimizer is supposed to dissolve.
    let mem_token_steps = |p: &Program, r: &SimResult| -> u64 {
        let is_mem = |id: pegasus::NodeId| {
            matches!(p.graph.kind(id), NodeKind::Load { .. } | NodeKind::Store { .. })
        };
        r.crit
            .as_ref()
            .expect("critpath enabled")
            .edges
            .iter()
            .filter(|e| {
                e.class == EdgeClass::Token && e.src != e.dst && is_mem(e.src) && is_mem(e.dst)
            })
            .map(|e| e.count)
            .sum()
    };

    let (pn, rn) = run(OptLevel::None);
    let (pf, rf) = run(OptLevel::Full);
    assert!(
        mem_token_steps(&pn, &rn) > 0,
        "unoptimized stores must serialize through tokens on the path"
    );
    assert_eq!(
        mem_token_steps(&pf, &rf),
        0,
        "token_removal must take the store-to-store serialization off the path"
    );
    assert!(rf.cycles <= rn.cycles, "removing critical edges cannot slow the circuit");
}
