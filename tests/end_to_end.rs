//! End-to-end tests: source text → optimized circuit → simulated result,
//! across language features and optimization levels.

use cash::{Compiler, MemSystem, OptLevel, SimConfig};

fn run_full(src: &str, args: &[i64]) -> i64 {
    Compiler::new()
        .compile(src)
        .expect("compiles")
        .simulate(args, &SimConfig::perfect())
        .expect("runs")
        .ret
        .expect("returns a value")
}

#[test]
fn arithmetic_operators() {
    let src = "int main(int a, int b) {
        return (a + b) * (a - b) + a / (b + 1) + a % (b + 1) + (a << 2) + (a >> 1)
             + (a & b) + (a | b) + (a ^ b) + (~a) + (-b);
    }";
    let f = |a: i64, b: i64| {
        let (a, b) = (a as i32, b as i32);
        i64::from(
            (a + b) * (a - b)
                + a / (b + 1)
                + a % (b + 1)
                + (a << 2)
                + (a >> 1)
                + (a & b)
                + (a | b)
                + (a ^ b)
                + !a
                + -b,
        )
    };
    for (a, b) in [(5, 3), (100, 7), (-13, 4), (0, 0), (-100, 99)] {
        assert_eq!(run_full(src, &[a, b]), f(a, b), "a={a} b={b}");
    }
}

#[test]
fn comparisons_and_logic() {
    let src = "int main(int a, int b) {
        int r = 0;
        if (a < b) r |= 1;
        if (a <= b) r |= 2;
        if (a > b) r |= 4;
        if (a >= b) r |= 8;
        if (a == b) r |= 16;
        if (a != b) r |= 32;
        if (a < 0 && b < 0) r |= 64;
        if (a < 0 || b < 0) r |= 128;
        if (!a) r |= 256;
        return r;
    }";
    let f = |a: i64, b: i64| {
        let mut r = 0;
        if a < b {
            r |= 1;
        }
        if a <= b {
            r |= 2;
        }
        if a > b {
            r |= 4;
        }
        if a >= b {
            r |= 8;
        }
        if a == b {
            r |= 16;
        }
        if a != b {
            r |= 32;
        }
        if a < 0 && b < 0 {
            r |= 64;
        }
        if a < 0 || b < 0 {
            r |= 128;
        }
        if a == 0 {
            r |= 256;
        }
        r
    };
    for (a, b) in [(1, 2), (2, 1), (3, 3), (-1, -2), (0, 5), (-7, 7)] {
        assert_eq!(run_full(src, &[a, b]), f(a, b), "a={a} b={b}");
    }
}

#[test]
fn unsigned_semantics() {
    // Unsigned comparison and shift differ from signed.
    let src = "int main(int x) {
        unsigned u = x;
        int r = 0;
        if (u > 0x7fffffff) r += 1;      /* negative ints become huge */
        r += (u >> 28) & 15;
        return r;
    }";
    assert_eq!(run_full(src, &[-1]), 1 + 15);
    assert_eq!(run_full(src, &[1]), 0);
}

#[test]
fn char_and_short_widths() {
    let src = "
        char c[4]; short s[4];
        int main(int x) {
            c[0] = x; s[0] = x;
            return c[0] * 100000 + s[0];
        }";
    // 300 wraps to 44 in i8; stays 300 in i16.
    assert_eq!(run_full(src, &[300]), 44 * 100000 + 300);
    // -1 sign-extends from both widths.
    assert_eq!(run_full(src, &[-1]), -100001);
}

#[test]
fn nested_loops_with_three_inner() {
    // The g721 shape that once deadlocked: several inner loops in sequence.
    let src = "
        int a[8];
        int main(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                for (int k = 0; k < 4; k++) acc += a[k];
                for (int k = 3; k > 0; k--) a[k] = a[k-1];
                a[0] = i;
                for (int k = 0; k < 2; k++) acc += k + i;
            }
            return acc;
        }";
    let f = |n: i64| {
        let mut a = [0i64; 8];
        let mut acc = 0;
        for i in 0..n {
            for &v in &a[..4] {
                acc += v;
            }
            for k in (1..4).rev() {
                a[k] = a[k - 1];
            }
            a[0] = i;
            for k in 0..2 {
                acc += k + i;
            }
        }
        acc
    };
    for n in [0, 1, 2, 5, 9] {
        assert_eq!(run_full(src, &[n]), f(n), "n={n}");
    }
}

#[test]
fn do_while_break_continue() {
    let src = "int main(int n) {
        int acc = 0;
        int i = 0;
        do {
            i++;
            if (i == 3) continue;
            if (i > n) break;
            acc += i;
        } while (i < 100);
        return acc;
    }";
    let f = |n: i64| {
        let mut acc = 0;
        let mut i = 0;
        loop {
            i += 1;
            if i != 3 {
                if i > n {
                    break;
                }
                acc += i;
            }
            if i >= 100 {
                break;
            }
        }
        acc
    };
    for n in [0, 2, 5, 50] {
        assert_eq!(run_full(src, &[n]), f(n), "n={n}");
    }
}

#[test]
fn ternary_and_nested_calls() {
    let src = "
        int mx(int a, int b) { return a > b ? a : b; }
        int mn(int a, int b) { return a < b ? a : b; }
        int clamp(int x, int lo, int hi) { return mx(lo, mn(x, hi)); }
        int main(int x) { return clamp(x, -10, 10) * 3; }";
    assert_eq!(run_full(src, &[100]), 30);
    assert_eq!(run_full(src, &[-100]), -30);
    assert_eq!(run_full(src, &[4]), 12);
}

#[test]
fn pointer_parameters_and_swap() {
    let src = "
        void swap(int* p, int* q) { int t = *p; *p = *q; *q = t; }
        int g1; int g2;
        int main(int a, int b) {
            g1 = a; g2 = b;
            if (g1 > g2) swap(&g1, &g2);
            return g1 * 1000 + g2;
        }";
    assert_eq!(run_full(src, &[7, 3]), 3007);
    assert_eq!(run_full(src, &[3, 7]), 3007);
}

#[test]
fn every_level_preserves_results_on_branchy_memory_code() {
    let src = "
        int tab[32]; int out[32];
        int main(int n) {
            for (int i = 0; i < n; i++) tab[i] = (i * 91) & 127;
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (tab[i] & 1) out[i] = tab[i] * 2;
                else out[i] = tab[i] - 1;
                if (out[i] > 100) out[i] = 100;
                acc += out[i];
            }
            return acc;
        }";
    let mut results = Vec::new();
    for level in OptLevel::ALL {
        let p = Compiler::new().level(level).compile(src).unwrap();
        let r = p.simulate(&[24], &SimConfig::perfect()).unwrap();
        results.push(r.ret);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}

#[test]
fn realistic_memory_system_is_functionally_identical() {
    let src = "
        int big[2048];
        int main(int n) {
            for (int i = 0; i < n; i++) big[(i * 97) & 2047] = i;
            int acc = 0;
            for (int i = 0; i < n; i++) acc += big[(i * 97) & 2047];
            return acc;
        }";
    let p = Compiler::new().compile(src).unwrap();
    let perfect = p.simulate(&[300], &SimConfig::perfect()).unwrap();
    let real = p
        .simulate(&[300], &SimConfig { mem: MemSystem::default(), ..SimConfig::default() })
        .unwrap();
    assert_eq!(perfect.ret, real.ret);
    assert!(real.cycles > perfect.cycles, "caches must cost something here");
    assert!(real.stats.l1_misses > 0);
}

#[test]
fn immutable_table_lookups_fold_or_run() {
    let src = "
        const int t[8] = {1, 2, 4, 8, 16, 32, 64, 128};
        int main(int i) { return t[3] + t[i & 7]; }";
    let p = Compiler::new().compile(src).unwrap();
    // t[3] folds to 8 at compile time; t[i&7] stays a load.
    assert_eq!(p.static_memory_ops().0, 1);
    let r = p.simulate(&[5], &SimConfig::perfect()).unwrap();
    assert_eq!(r.ret, Some(8 + 32));
}

#[test]
fn deep_expression_nesting() {
    let src = "int main(int x) {
        return ((((x + 1) * 2 - 3) << 1) | 1) ^ ((x ? x : 1) + (x > 0 ? -x : x));
    }";
    let f = |x: i64| {
        ((((x + 1) * 2 - 3) << 1) | 1)
            ^ ((if x != 0 { x } else { 1 }) + (if x > 0 { -x } else { x }))
    };
    for x in [-9, -1, 0, 1, 2, 77] {
        assert_eq!(run_full(src, &[x]), f(x), "x={x}");
    }
}

#[test]
fn results_are_invariant_under_hardware_sizing() {
    // Kahn-network determinism: channel depth, LSQ ports and LSQ size are
    // pure timing knobs — results and memory traffic must not change.
    let src = "
        int a[64]; int b[65];
        int main(int n) {
            for (int i = 0; i < n; i++) {
                b[i+1] = (i * 3) & 31;
                a[i] = b[i] + a[i] + 1;
                if (a[i] > 20) a[i] -= 7;
            }
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i] * (i + 1);
            return s;
        }";
    for level in [OptLevel::None, OptLevel::Full] {
        let p = Compiler::new().level(level).compile(src).unwrap();
        let mut expect = None;
        for cap in [2usize, 3, 8, 32] {
            for (ports, size) in [(1u32, 4u32), (2, 16), (8, 64)] {
                let cfg = SimConfig {
                    channel_capacity: cap,
                    lsq_ports: ports,
                    lsq_size: size,
                    ..SimConfig::perfect()
                };
                let r = p.simulate(&[40], &cfg).unwrap();
                let key = (r.ret, r.stats.loads, r.stats.stores);
                match &expect {
                    None => expect = Some(key),
                    Some(e) => assert_eq!(*e, key, "{level}: cap={cap} ports={ports} size={size}"),
                }
            }
        }
    }
}

#[test]
fn zero_trip_and_single_trip_loops() {
    let src = "
        int a[8];
        int main(int n) {
            int s = 100;
            for (int i = 0; i < n; i++) { a[i] = i; s += a[i]; }
            return s;
        }";
    let p = Compiler::new().compile(src).unwrap();
    for (n, want) in [(0i64, 100i64), (1, 100), (2, 101), (8, 128)] {
        let r = p.simulate(&[n], &SimConfig::perfect()).unwrap();
        assert_eq!(r.ret, Some(want), "n={n}");
    }
}

#[test]
fn global_scalar_initializers_load_correctly() {
    let src = "
        int g = 41;
        const int k = 1;
        int main(void) { return g + k; }";
    assert_eq!(run_full(src, &[]), 42);
}
