//! Loop-pipelining behaviour tests: the §6 transformations must not only
//! preserve semantics but actually overlap iterations, and the token
//! generator must bound slip exactly as §6.3 specifies.

use cash::{Compiler, MemSystem, OptLevel, SimConfig};

fn cycles(src: &str, level: OptLevel, arg: i64, cfg: &SimConfig) -> (u64, Option<i64>) {
    let p = Compiler::new().level(level).compile(src).unwrap();
    let r = p.simulate(&[arg], cfg).unwrap();
    (r.cycles, r.ret)
}

#[test]
fn producer_consumer_pipelines() {
    // Figure 10: with fine-grained synchronization the source reads run
    // ahead of the destination writes.
    let src = "
        int s[128]; int d[128];
        int main(int n) {
            for (int i = 0; i < n; i++) s[i] = i * 3;
            for (int i = 0; i < n; i++) d[i] = s[i] + 5;
            return d[7];
        }";
    let cfg = SimConfig::perfect();
    let (slow, r0) = cycles(src, OptLevel::Basic, 96, &cfg);
    let (fast, r1) = cycles(src, OptLevel::Full, 96, &cfg);
    assert_eq!(r0, r1);
    assert!(fast as f64 <= slow as f64 * 0.8, "expected ≥20% gain: {slow} -> {fast}");
}

#[test]
fn decoupling_beats_serial_when_loads_are_slow() {
    let src = "
        int a[160];
        int main(int n) {
            for (int i = 0; i < n; i++) a[i] = a[i] + a[i+3];
            return a[5];
        }";
    let cfg = SimConfig { mem: MemSystem::default(), ..SimConfig::default() };
    let (serial, r0) = cycles(src, OptLevel::Medium, 128, &cfg);
    let (decoupled, r1) = cycles(src, OptLevel::Full, 128, &cfg);
    assert_eq!(r0, r1);
    assert!(decoupled < serial, "decoupled {decoupled} vs serial {serial}");
}

#[test]
fn token_generator_bounds_slip_functionally() {
    // The update of a[i] must see the *old* a[i+d] for every distance d:
    // if the token generator over-granted, the far load would read updated
    // values and the checksum would change.
    for d in 1..6 {
        let src = format!(
            "int a[96];
             int main(int n) {{
                 for (int i = 0; i < 64; i++) a[i] = i;
                 for (int i = 0; i < n; i++) a[i] = a[i] + a[i+{d}];
                 int s = 0;
                 for (int i = 0; i < n; i++) s += a[i] * (i + 1);
                 return s;
             }}"
        );
        let reference = {
            let mut a: Vec<i64> = (0..96).map(|i| if i < 64 { i } else { 0 }).collect();
            let n = 40usize;
            for i in 0..n {
                a[i] += a[i + d];
            }
            (0..n).map(|i| a[i] * (i as i64 + 1)).sum::<i64>()
        };
        let p = Compiler::new().level(OptLevel::Full).compile(&src).unwrap();
        assert!(p.graph.count_token_gens() >= 1, "distance {d} should produce a token generator");
        let r = p.simulate(&[40], &SimConfig::perfect()).unwrap();
        assert_eq!(r.ret, Some(reference), "distance {d}");
    }
}

#[test]
fn read_only_loops_do_not_regress() {
    // §6.1 on a pure reduction. The paper's own finding — "the read-only
    // optimizations in Section 6.1 were almost always not very profitable"
    // — holds here too: loads already release their token at issue, so the
    // serial ring issues nearly as fast as the generator ring. The
    // transformation must simply never hurt.
    let src = "
        int a[512];
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }";
    let cfg = SimConfig { mem: MemSystem::Perfect { latency: 12 }, ..SimConfig::default() };
    let (serial, r0) = cycles(src, OptLevel::Basic, 128, &cfg);
    let (pipelined, r1) = cycles(src, OptLevel::Full, 128, &cfg);
    assert_eq!(r0, r1);
    assert!(pipelined <= serial, "pipelined {pipelined} vs serial {serial}");
}

#[test]
fn more_ports_help_pipelined_loops() {
    // Figure 19's bandwidth observation: once loops are pipelined, memory
    // ports become the bottleneck.
    let src = "
        int a[256]; int b[256]; int c[256];
        int main(int n) {
            for (int i = 0; i < n; i++) c[i] = a[i] + b[i];
            return c[3];
        }";
    let p = Compiler::new().level(OptLevel::Full).compile(src).unwrap();
    let run = |ports: u32| {
        let cfg = SimConfig {
            mem: MemSystem::Perfect { latency: 2 },
            lsq_ports: ports,
            ..SimConfig::default()
        };
        p.simulate(&[128], &cfg).unwrap().cycles
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    assert!(two < one, "2 ports {two} vs 1 port {one}");
    assert!(four <= two, "4 ports {four} vs 2 ports {two}");
}

#[test]
fn pipelining_leaves_dependent_loops_serial() {
    // A true loop-carried dependence through memory at unknown distance:
    // a[c[i]] chains unpredictably, so Full must not break it.
    let src = "
        int a[64]; int c[64];
        int main(int n) {
            for (int i = 0; i < n; i++) c[i] = (i * 17) & 63;
            for (int i = 0; i < n; i++) a[c[i]] = a[c[i]] + i;
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }";
    let reference = |n: i64| {
        let n = n as usize;
        let c: Vec<usize> = (0..n).map(|i| (i * 17) & 63).collect();
        let mut a = [0i64; 64];
        for i in 0..n {
            a[c[i]] += i as i64;
        }
        a[..n.min(64)].iter().sum::<i64>()
    };
    let p = Compiler::new().level(OptLevel::Full).compile(src).unwrap();
    for n in [8i64, 32, 64] {
        let r = p.simulate(&[n], &SimConfig::perfect()).unwrap();
        assert_eq!(r.ret, Some(reference(n)), "n={n}");
    }
}
