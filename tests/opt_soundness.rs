//! Optimizer soundness: property-based A/B testing. Random programs from a
//! structured generator are compiled at `None` and `Full` and must agree on
//! results and final memory for several inputs.

use cash::{Compiler, OptLevel, SimConfig};
use proptest::prelude::*;

/// A tiny random-program generator: straight-line and looped accesses over
/// two arrays with data-dependent branches.
#[derive(Debug, Clone)]
enum Op {
    StoreA { idx: u8, val: i8 },
    StoreB { idx: u8, val: i8 },
    AccLoadA { idx: u8 },
    AccLoadB { idx: u8 },
    CondStoreA { idx: u8, val: i8 },
    LoopCopy { len: u8, off: u8 },
    LoopAcc { len: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, any::<i8>()).prop_map(|(idx, val)| Op::StoreA { idx, val }),
        (0u8..8, any::<i8>()).prop_map(|(idx, val)| Op::StoreB { idx, val }),
        (0u8..8).prop_map(|idx| Op::AccLoadA { idx }),
        (0u8..8).prop_map(|idx| Op::AccLoadB { idx }),
        (0u8..8, any::<i8>()).prop_map(|(idx, val)| Op::CondStoreA { idx, val }),
        (1u8..6, 0u8..3).prop_map(|(len, off)| Op::LoopCopy { len, off }),
        (1u8..8).prop_map(|len| Op::LoopAcc { len }),
    ]
}

fn emit(ops: &[Op]) -> String {
    let mut body = String::new();
    for (k, o) in ops.iter().enumerate() {
        let stmt = match o {
            Op::StoreA { idx, val } => format!("a[{idx}] = {val};"),
            Op::StoreB { idx, val } => format!("b[{idx}] = {val};"),
            Op::AccLoadA { idx } => format!("acc += a[{idx}];"),
            Op::AccLoadB { idx } => format!("acc += b[{idx}];"),
            Op::CondStoreA { idx, val } => {
                format!("if ((x + {k}) & 1) a[{idx}] = {val};")
            }
            Op::LoopCopy { len, off } => format!(
                "for (int i = 0; i < {len}; i++) b[i + {off}] = a[i] + 1;"
            ),
            Op::LoopAcc { len } => {
                format!("for (int i = 0; i < {len}; i++) acc += a[i] ^ b[i];")
            }
        };
        body.push_str("            ");
        body.push_str(&stmt);
        body.push('\n');
    }
    format!(
        "int a[16]; int b[16];
         int main(int x) {{
            int acc = x;
{body}
            int sum = 0;
            for (int i = 0; i < 16; i++) sum += a[i] * 3 + b[i];
            return acc * 100003 + sum;
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn optimizer_preserves_program_behaviour(ops in proptest::collection::vec(op(), 1..10)) {
        let src = emit(&ops);
        let base = Compiler::new().level(OptLevel::None).compile(&src)
            .expect("baseline compiles");
        let full = Compiler::new().level(OptLevel::Full).compile(&src)
            .expect("optimized compiles");
        for x in [0i64, 1, -3, 42] {
            let r0 = base.simulate(&[x], &SimConfig::perfect()).expect("baseline runs");
            let r1 = full.simulate(&[x], &SimConfig::perfect()).expect("optimized runs");
            prop_assert_eq!(r0.ret, r1.ret, "x={} src:\n{}", x, src);
            // The optimizer must never *increase* memory traffic.
            prop_assert!(
                r1.stats.loads <= r0.stats.loads,
                "loads grew {} -> {} for:\n{}", r0.stats.loads, r1.stats.loads, src
            );
            prop_assert!(
                r1.stats.stores <= r0.stats.stores,
                "stores grew {} -> {} for:\n{}", r0.stats.stores, r1.stats.stores, src
            );
        }
    }
}

#[test]
fn medium_level_is_also_sound_on_the_pipelining_shapes() {
    // Deterministic regression corpus for the §6 transformations.
    let corpus = [
        "int a[32]; int main(int n) {
             for (int i = 0; i < n; i++) a[i] = a[i] + a[i+3];
             int s = 0; for (int i = 0; i < n; i++) s += a[i];
             return s; }",
        "int a[32]; int b[33]; int main(int n) {
             for (int i = 0; i < n; i++) { b[i+1] = i & 7; a[i] = b[i] * 2; }
             int s = 0; for (int i = 0; i < n; i++) s += a[i] - b[i];
             return s; }",
        "int a[32]; int main(int n) {
             int s = 0;
             for (int i = 0; i < n; i++) s += a[i & 3];    /* read-only */
             for (int i = 0; i < n; i++) a[(s + i) & 31] = i; /* unknown */
             return s + a[0]; }",
    ];
    for src in corpus {
        let mut prev = None;
        for level in OptLevel::ALL {
            let p = Compiler::new().level(level).compile(src).unwrap();
            for n in [0i64, 1, 7, 23] {
                let r = p.simulate(&[n], &SimConfig::perfect()).unwrap();
                if let Some((pl, pn, pr)) = prev {
                    if pn == n {
                        assert_eq!(pr, r.ret, "{pl} vs {level} at n={n}:\n{src}");
                    }
                }
                prev = Some((level, n, r.ret));
            }
        }
    }
}

#[test]
fn static_reductions_never_lose_operations_semantically() {
    // Kernels with heavy redundancy: check the optimizer's static claims
    // against dynamic counts.
    let src = "
        int a[8];
        int main(int i, int v) {
            a[i] = v;
            a[i] = v + 1;          /* kills the first store */
            int x = a[i];          /* forwarded */
            a[i] = x * 2;
            return a[i];           /* forwarded */
        }";
    let p = Compiler::new().compile(src).unwrap();
    let (loads, stores) = p.static_memory_ops();
    assert!(loads == 0, "all loads forwarded, got {loads}");
    assert!(stores <= 2, "dead store removed, got {stores}");
    let r = p.simulate(&[2, 10], &SimConfig::perfect()).unwrap();
    assert_eq!(r.ret, Some(22));
}
