//! Optimizer soundness: differential testing against the reference
//! interpreter.
//!
//! Random programs from `refinterp::gen` (seeded, so every run is
//! reproducible) are compiled and simulated at *every* `OptLevel` and must
//! match the tree-walking interpreter's return value and final memory image.
//! On a mismatch the harness bisects the pass pipeline to the first
//! offending invocation and the shrinker writes a minimized reproducer —
//! the failure message names the pass, not just the program.
//!
//! The sweep is split into four tests so the harness runs them in parallel.

use cash::{Compiler, OptLevel, SimConfig};
use refinterp::{diff_program, diff_seeds, gen, DiffOptions, DiffOutcome};

/// Arguments for a seed: small, varied, and deterministic.
fn args_for(seed: u64) -> [i64; 1] {
    [(seed % 11) as i64]
}

/// Checks one seed range at every opt level; panics with the bisected pass
/// and the full program text on any disagreement. The seeds fan out across
/// worker threads; the lowest failing seed is reported, exactly as the
/// serial sweep did.
fn sweep(seeds: std::ops::Range<u64>) {
    let opts = DiffOptions::default();
    match diff_seeds(seeds, |seed| args_for(seed).to_vec(), &opts) {
        None => {}
        Some((seed, DiffOutcome::Agree)) => unreachable!("agreements are filtered, seed {seed}"),
        Some((seed, DiffOutcome::OracleError(e))) => {
            panic!("seed {seed}: oracle refused an in-domain program: {e}")
        }
        Some((seed, DiffOutcome::Fail(f))) => panic!(
            "seed {seed} at {:?}: {}\nfirst offending pass: {:?}\n{}",
            f.level,
            f.detail,
            f.pass,
            gen::render(&gen::gen(seed))
        ),
    }
}

#[test]
fn generated_programs_agree_with_the_interpreter_q1() {
    sweep(0..75);
}

#[test]
fn generated_programs_agree_with_the_interpreter_q2() {
    sweep(75..150);
}

#[test]
fn generated_programs_agree_with_the_interpreter_q3() {
    sweep(150..225);
}

#[test]
fn generated_programs_agree_with_the_interpreter_q4() {
    sweep(225..300);
}

#[test]
fn lint_is_silent_on_unsabotaged_generated_programs() {
    // False-positive soak for the static lint: every clean graph the
    // generator can produce, at every level, must lint silent. The
    // differential sweeps above would also trip on a diagnostic (the harness
    // lints before simulating), but this compile-only pass keeps the
    // property explicit and cheap to bisect when a rule regresses.
    let dirty = cash::par::par_map((0..300u64).collect::<Vec<_>>(), |seed| {
        let src = gen::render(&gen::gen(seed));
        for level in OptLevel::ALL {
            let p = Compiler::new().level(level).compile(&src).expect("generated src compiles");
            if !p.report.lint.is_clean() {
                return Some(format!("seed {seed} at {level}: {:?}", p.report.lint.diags));
            }
        }
        None
    });
    let failures: Vec<String> = dirty.into_iter().flatten().collect();
    assert!(failures.is_empty(), "lint false positives:\n{}", failures.join("\n"));
}

#[test]
fn optimization_never_increases_memory_traffic_on_generated_programs() {
    for seed in 0..30u64 {
        let src = gen::render(&gen::gen(seed));
        let base = Compiler::new().level(OptLevel::None).compile(&src).expect("baseline compiles");
        let full = Compiler::new().level(OptLevel::Full).compile(&src).expect("optimized compiles");
        for x in args_for(seed) {
            let r0 = base.simulate(&[x], &SimConfig::perfect()).expect("baseline runs");
            let r1 = full.simulate(&[x], &SimConfig::perfect()).expect("optimized runs");
            assert_eq!(r0.ret, r1.ret, "seed {seed} x={x}:\n{src}");
            assert!(
                r1.stats.loads <= r0.stats.loads,
                "seed {seed}: loads grew {} -> {} for:\n{src}",
                r0.stats.loads,
                r1.stats.loads,
            );
            assert!(
                r1.stats.stores <= r0.stats.stores,
                "seed {seed}: stores grew {} -> {} for:\n{src}",
                r0.stats.stores,
                r1.stats.stores,
            );
        }
    }
}

#[test]
fn an_injected_optimizer_fault_is_caught_bisected_and_shrunk() {
    // End-to-end self-test of the harness: arm the optimizer's fault
    // injection so `load_store` miscompiles, then check that the harness
    // catches the mismatch, bisection names the exact sabotaged pass, and
    // the shrinker writes a reproducer that still pinpoints it.
    let opts = DiffOptions {
        levels: vec![OptLevel::Full],
        sabotage: Some("load_store"),
        ..DiffOptions::default()
    };
    let prog = gen::gen(0);
    let args = args_for(0);
    let failure = match diff_program(&prog, &args, &opts) {
        DiffOutcome::Fail(f) => f,
        other => panic!("sabotaged compiler must disagree with the oracle, got {other:?}"),
    };
    let bad = failure.pass.expect("mismatch appears only once the sabotaged pass runs");
    assert_eq!(bad.name, "load_store", "bisection must name the sabotaged pass");

    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("repro");
    let rep = refinterp::shrink::shrink_failure(&prog, &args, OptLevel::Full, &opts, Some(&dir));
    assert_eq!(
        rep.pass.as_ref().map(|p| p.name.as_str()),
        Some("load_store"),
        "the shrunk program must still bisect to the sabotaged pass"
    );

    // The reproducer file names the seed and the pass, and its body (header
    // comments included) is compilable MiniC.
    let path = rep.path.expect("reproducer written");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("// seed: 0"), "missing seed line:\n{text}");
    assert!(text.contains("first offending pass: load_store"), "missing pass line:\n{text}");
    Compiler::new().level(OptLevel::None).compile(&text).expect("reproducer compiles as-is");

    // Shrinking must not grow the program.
    let orig_len = gen::render(&prog).len();
    let red_len = gen::render(&rep.reduced).len();
    assert!(red_len <= orig_len, "shrinker grew the program: {orig_len} -> {red_len}");
}

#[test]
fn medium_level_is_also_sound_on_the_pipelining_shapes() {
    // Deterministic regression corpus for the §6 transformations.
    let corpus = [
        "int a[32]; int main(int n) {
             for (int i = 0; i < n; i++) a[i] = a[i] + a[i+3];
             int s = 0; for (int i = 0; i < n; i++) s += a[i];
             return s; }",
        "int a[32]; int b[33]; int main(int n) {
             for (int i = 0; i < n; i++) { b[i+1] = i & 7; a[i] = b[i] * 2; }
             int s = 0; for (int i = 0; i < n; i++) s += a[i] - b[i];
             return s; }",
        "int a[32]; int main(int n) {
             int s = 0;
             for (int i = 0; i < n; i++) s += a[i & 3];    /* read-only */
             for (int i = 0; i < n; i++) a[(s + i) & 31] = i; /* unknown */
             return s + a[0]; }",
    ];
    for src in corpus {
        let mut prev = None;
        for level in OptLevel::ALL {
            let p = Compiler::new().level(level).compile(src).unwrap();
            for n in [0i64, 1, 7, 23] {
                let r = p.simulate(&[n], &SimConfig::perfect()).unwrap();
                if let Some((pl, pn, pr)) = prev {
                    if pn == n {
                        assert_eq!(pr, r.ret, "{pl} vs {level} at n={n}:\n{src}");
                    }
                }
                prev = Some((level, n, r.ret));
            }
        }
    }
}

#[test]
fn static_reductions_never_lose_operations_semantically() {
    // Kernels with heavy redundancy: check the optimizer's static claims
    // against dynamic counts.
    let src = "
        int a[8];
        int main(int i, int v) {
            a[i] = v;
            a[i] = v + 1;          /* kills the first store */
            int x = a[i];          /* forwarded */
            a[i] = x * 2;
            return a[i];           /* forwarded */
        }";
    let p = Compiler::new().compile(src).unwrap();
    let (loads, stores) = p.static_memory_ops();
    assert!(loads == 0, "all loads forwarded, got {loads}");
    assert!(stores <= 2, "dead store removed, got {stores}");
    let r = p.simulate(&[2, 10], &SimConfig::perfect()).unwrap();
    assert_eq!(r.ret, Some(22));
}
