//! Optimizer soundness: randomized A/B testing. Random programs from a
//! structured generator (seeded xorshift PRNG, so runs are reproducible)
//! are compiled at `None` and `Full` and must agree on results and memory
//! traffic for several inputs.

use cash::{Compiler, OptLevel, SimConfig};

/// Minimal deterministic PRNG (xorshift64*): enough to drive the program
/// generator without an external dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A tiny random-program generator: straight-line and looped accesses over
/// two arrays with data-dependent branches.
#[derive(Debug, Clone)]
enum Op {
    StoreA { idx: u8, val: i8 },
    StoreB { idx: u8, val: i8 },
    AccLoadA { idx: u8 },
    AccLoadB { idx: u8 },
    CondStoreA { idx: u8, val: i8 },
    LoopCopy { len: u8, off: u8 },
    LoopAcc { len: u8 },
}

fn gen_op(rng: &mut Rng) -> Op {
    let idx = rng.below(8) as u8;
    let val = rng.next() as i8;
    match rng.below(7) {
        0 => Op::StoreA { idx, val },
        1 => Op::StoreB { idx, val },
        2 => Op::AccLoadA { idx },
        3 => Op::AccLoadB { idx },
        4 => Op::CondStoreA { idx, val },
        5 => Op::LoopCopy { len: 1 + rng.below(5) as u8, off: rng.below(3) as u8 },
        _ => Op::LoopAcc { len: 1 + rng.below(7) as u8 },
    }
}

fn emit(ops: &[Op]) -> String {
    let mut body = String::new();
    for (k, o) in ops.iter().enumerate() {
        let stmt = match o {
            Op::StoreA { idx, val } => format!("a[{idx}] = {val};"),
            Op::StoreB { idx, val } => format!("b[{idx}] = {val};"),
            Op::AccLoadA { idx } => format!("acc += a[{idx}];"),
            Op::AccLoadB { idx } => format!("acc += b[{idx}];"),
            Op::CondStoreA { idx, val } => {
                format!("if ((x + {k}) & 1) a[{idx}] = {val};")
            }
            Op::LoopCopy { len, off } => {
                format!("for (int i = 0; i < {len}; i++) b[i + {off}] = a[i] + 1;")
            }
            Op::LoopAcc { len } => {
                format!("for (int i = 0; i < {len}; i++) acc += a[i] ^ b[i];")
            }
        };
        body.push_str("            ");
        body.push_str(&stmt);
        body.push('\n');
    }
    format!(
        "int a[16]; int b[16];
         int main(int x) {{
            int acc = x;
{body}
            int sum = 0;
            for (int i = 0; i < 16; i++) sum += a[i] * 3 + b[i];
            return acc * 100003 + sum;
         }}"
    )
}

#[test]
fn optimizer_preserves_program_behaviour() {
    let mut rng = Rng(0x5eed_0004);
    for case in 0..24 {
        let n_ops = 1 + rng.below(9) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| gen_op(&mut rng)).collect();
        let src = emit(&ops);
        let base = Compiler::new().level(OptLevel::None).compile(&src).expect("baseline compiles");
        let full = Compiler::new().level(OptLevel::Full).compile(&src).expect("optimized compiles");
        for x in [0i64, 1, -3, 42] {
            let r0 = base.simulate(&[x], &SimConfig::perfect()).expect("baseline runs");
            let r1 = full.simulate(&[x], &SimConfig::perfect()).expect("optimized runs");
            assert_eq!(r0.ret, r1.ret, "case {case} x={x} src:\n{src}");
            // The optimizer must never *increase* memory traffic.
            assert!(
                r1.stats.loads <= r0.stats.loads,
                "loads grew {} -> {} for:\n{src}",
                r0.stats.loads,
                r1.stats.loads,
            );
            assert!(
                r1.stats.stores <= r0.stats.stores,
                "stores grew {} -> {} for:\n{src}",
                r0.stats.stores,
                r1.stats.stores,
            );
        }
    }
}

#[test]
fn medium_level_is_also_sound_on_the_pipelining_shapes() {
    // Deterministic regression corpus for the §6 transformations.
    let corpus = [
        "int a[32]; int main(int n) {
             for (int i = 0; i < n; i++) a[i] = a[i] + a[i+3];
             int s = 0; for (int i = 0; i < n; i++) s += a[i];
             return s; }",
        "int a[32]; int b[33]; int main(int n) {
             for (int i = 0; i < n; i++) { b[i+1] = i & 7; a[i] = b[i] * 2; }
             int s = 0; for (int i = 0; i < n; i++) s += a[i] - b[i];
             return s; }",
        "int a[32]; int main(int n) {
             int s = 0;
             for (int i = 0; i < n; i++) s += a[i & 3];    /* read-only */
             for (int i = 0; i < n; i++) a[(s + i) & 31] = i; /* unknown */
             return s + a[0]; }",
    ];
    for src in corpus {
        let mut prev = None;
        for level in OptLevel::ALL {
            let p = Compiler::new().level(level).compile(src).unwrap();
            for n in [0i64, 1, 7, 23] {
                let r = p.simulate(&[n], &SimConfig::perfect()).unwrap();
                if let Some((pl, pn, pr)) = prev {
                    if pn == n {
                        assert_eq!(pr, r.ret, "{pl} vs {level} at n={n}:\n{src}");
                    }
                }
                prev = Some((level, n, r.ret));
            }
        }
    }
}

#[test]
fn static_reductions_never_lose_operations_semantically() {
    // Kernels with heavy redundancy: check the optimizer's static claims
    // against dynamic counts.
    let src = "
        int a[8];
        int main(int i, int v) {
            a[i] = v;
            a[i] = v + 1;          /* kills the first store */
            int x = a[i];          /* forwarded */
            a[i] = x * 2;
            return a[i];           /* forwarded */
        }";
    let p = Compiler::new().compile(src).unwrap();
    let (loads, stores) = p.static_memory_ops();
    assert!(loads == 0, "all loads forwarded, got {loads}");
    assert!(stores <= 2, "dead store removed, got {stores}");
    let r = p.simulate(&[2, 10], &SimConfig::perfect()).unwrap();
    assert_eq!(r.ret, Some(22));
}
