//! Bytecode lowerer round-trip: lower → disassemble → compare against the
//! graph and its `FlatPorts` CSR adjacency.
//!
//! The compiled backend addresses every per-port array through the
//! operand-slot bases baked into each op, so an off-by-one in
//! `in_base`/`out_base` arithmetic or a consumer list in the wrong order
//! corrupts simulations in ways the differential tier can only observe
//! downstream. This test checks the structural claims directly, without
//! running anything: for every node of every lowered program, the
//! disassembled op's mnemonic matches the node kind, its arity and slot
//! bases match the flat numbering, its input sources and classes match
//! the graph's edges, and its per-output consumer lists reproduce the CSR
//! adjacency element-for-element.

use cash::{Compiler, OptLevel};
use pegasus::{FlatPorts, Graph, NodeId, NodeKind};
use refinterp::gen;

/// The expected mnemonic for a node kind (independent re-statement of the
/// lowering table, so a drive-by edit to one side fails here).
fn expected_mnemonic(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Removed => "skip",
        NodeKind::Const { .. } => "const",
        NodeKind::Param { .. } => "param",
        NodeKind::Addr { .. } => "addr",
        NodeKind::InitialToken => "token0",
        NodeKind::BinOp { .. } => "bin",
        NodeKind::UnOp { .. } => "un",
        NodeKind::Cast { .. } => "cast",
        NodeKind::Mux { .. } => "mux",
        NodeKind::Merge { .. } => "merge",
        NodeKind::Eta { .. } => "eta",
        NodeKind::Combine => "combine",
        NodeKind::TokenGen { .. } => "tokengen",
        NodeKind::Load { .. } => "load",
        NodeKind::Store { .. } => "store",
        NodeKind::Return { .. } => "ret",
    }
}

/// Lower `g`, disassemble, and check every op against the graph and an
/// independently built `FlatPorts`.
fn check_roundtrip(g: &Graph, what: &str) {
    let flat = FlatPorts::new(g);
    let views = ashsim::LoweredProgram::lower(g).disasm();
    assert_eq!(views.len(), g.len(), "{what}: one op per node slot");
    for view in &views {
        let id = NodeId(view.node);
        let kind = g.kind(id);
        assert_eq!(view.mnemonic, expected_mnemonic(kind), "{what} n{}: opcode", view.node);
        assert_eq!(view.nin as usize, g.num_inputs(id), "{what} n{}: arity", view.node);
        assert_eq!(view.nout, kind.num_outputs(), "{what} n{}: output arity", view.node);
        assert_eq!(view.in_base, flat.in_id(id, 0), "{what} n{}: input base", view.node);
        assert_eq!(view.out_base, flat.out_id(id, 0), "{what} n{}: output base", view.node);
        assert_eq!(view.inputs.len(), view.nin as usize, "{what} n{}", view.node);
        for (p, ip) in view.inputs.iter().enumerate() {
            let p16 = p as u16;
            assert_eq!(ip.flat, flat.in_id(id, p16), "{what} n{} in{p}: flat id", view.node);
            assert_eq!(ip.class, kind.input_class(p16), "{what} n{} in{p}: class", view.node);
            assert_eq!(
                ip.src,
                g.input(id, p16).map(|i| i.src.node.0),
                "{what} n{} in{p}: source",
                view.node
            );
        }
        assert_eq!(view.outputs.len(), view.nout as usize, "{what} n{}", view.node);
        for (port, consumers) in view.outputs.iter().enumerate() {
            let expect: Vec<(u32, u16, u32)> = flat
                .consumers(id, port as u16)
                .iter()
                .map(|u| (u.dst.0, u.dst_port, u.dst_flat))
                .collect();
            assert_eq!(consumers, &expect, "{what} n{} out{port}: CSR consumer list", view.node);
        }
    }
    // Slot numbering is dense and contiguous: the op table's bases tile
    // the flat port space in node order with no gaps or overlaps.
    let mut next_in = 0u32;
    let mut next_out = 0u32;
    for view in &views {
        assert_eq!(view.in_base, next_in, "{what} n{}: input slots contiguous", view.node);
        assert_eq!(view.out_base, next_out, "{what} n{}: output slots contiguous", view.node);
        next_in += u32::from(view.nin);
        next_out += u32::from(view.nout);
    }
    assert_eq!(next_in as usize, flat.num_in_ports(), "{what}: input slot count");
    assert_eq!(next_out as usize, flat.num_out_ports(), "{what}: output slot count");
}

/// Property sweep over seeded generated programs at both extremes of the
/// pass pipeline (unoptimized graphs keep merges/token plumbing that Full
/// removes, so both shapes round-trip).
#[test]
fn generated_programs_roundtrip() {
    let mut tasks = Vec::new();
    for seed in 0..60u64 {
        for level in [OptLevel::None, OptLevel::Full] {
            tasks.push((seed, level));
        }
    }
    cash::par::par_map(tasks, |(seed, level)| {
        let src = gen::render(&gen::gen(seed));
        let p = Compiler::new()
            .level(level)
            .compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed} at {level}: {e}"));
        check_roundtrip(&p.graph, &format!("gen{seed:03} at {level}"));
    });
}

/// Every suite kernel at every level.
#[test]
fn kernels_roundtrip() {
    let tasks: Vec<_> = workloads::suite()
        .into_iter()
        .flat_map(|w| OptLevel::ALL.into_iter().map(move |level| (w.name, w.source, level)))
        .collect();
    cash::par::par_map(tasks, |(name, source, level)| {
        let p = Compiler::new()
            .level(level)
            .compile(source)
            .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
        check_roundtrip(&p.graph, &format!("{name} at {level}"));
    });
}
