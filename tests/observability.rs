//! Observability end-to-end: per-node circuit profiles, the Perfetto
//! (Chrome trace-event) exporter, the heat-map dot overlay, the shared
//! telemetry JSON, and deadlock diagnostics.

use cash::{Compiler, OptLevel, SimConfig};
use pegasus::NodeKind;

const LOOP_SRC: &str = "
    int a[16];
    int main(int n) {
        for (int i = 0; i < n; i++) a[i] = i * 2;
        return a[3];
    }";

fn observed(level: OptLevel, n: i64) -> (cash::Program, cash::SimResult) {
    let p = Compiler::new().level(level).compile(LOOP_SRC).unwrap();
    let cfg = SimConfig { profile: true, trace: true, critpath: true, ..SimConfig::perfect() };
    let r = p.simulate(&[n], &cfg).unwrap();
    (p, r)
}

/// A loop with a known trip count must produce exact per-node firing
/// counts: the body store fires once per iteration, the exit load and the
/// return fire exactly once, and the profile's totals agree with the
/// aggregate counters.
#[test]
fn loop_profile_has_exact_firing_counts() {
    let n = 8;
    let (p, r) = observed(OptLevel::None, n);
    assert_eq!(r.ret, Some(6));
    let prof = r.profile.as_ref().expect("profiling enabled");
    assert_eq!(prof.total_fires(), r.fired, "profile must account for every firing");
    assert_eq!(prof.cycles, r.cycles);

    let by_kind = |pred: fn(&NodeKind) -> bool| -> Vec<pegasus::NodeId> {
        p.graph.live_ids().filter(|&id| pred(p.graph.kind(id))).collect()
    };
    let stores = by_kind(|k| matches!(k, NodeKind::Store { .. }));
    let loads = by_kind(|k| matches!(k, NodeKind::Load { .. }));
    let rets = by_kind(|k| matches!(k, NodeKind::Return { .. }));
    assert_eq!(stores.len(), 1, "one static store");
    assert_eq!(loads.len(), 1, "one static load");
    assert_eq!(rets.len(), 1);

    // Predicated execution: the body store consumes one wave per iteration
    // plus the nullified exit wave (n+1 firings), but only the n
    // true-predicate firings reach memory.
    let store = prof.node(stores[0]);
    assert_eq!(store.fires, n as u64 + 1, "store fires n+1 times");
    assert_eq!(r.stats.stores, n as u64, "only n firings access memory");
    assert_eq!(prof.node(loads[0]).fires, 1, "exit load fires once");
    assert_eq!(prof.node(rets[0]).fires, 1, "return fires once");
    assert!(store.first_fire.unwrap() <= store.last_fire.unwrap());
    assert!(store.last_fire.unwrap() < r.cycles);

    // The loop condition (the only `lt` in the circuit) sees every
    // iteration plus the exit test: n + 1 firings.
    let lts = by_kind(|k| matches!(k, NodeKind::BinOp { op: cfgir::types::BinOp::Lt, .. }));
    assert_eq!(lts.len(), 1);
    assert_eq!(prof.node(lts[0]).fires, n as u64 + 1, "loop test fires n+1 times");

    // Dependent stores serialize through the token chain at level None, so
    // somebody must have measurably stalled on a token input.
    let total_token_stall: u64 = prof.nodes.iter().map(|np| np.stalled_token).sum();
    assert!(total_token_stall > 0, "token chain must show up as token stalls");

    // The rankings are consistent with the raw counters.
    let hottest = prof.hottest(3);
    assert!(!hottest.is_empty());
    assert!(hottest[0].1 >= prof.node(stores[0]).fires);
}

/// Profiling and tracing are opt-in: the plain configs return `None` for
/// both, keeping the uninstrumented path allocation-free.
#[test]
fn observability_is_off_by_default() {
    let p = Compiler::new().level(OptLevel::Full).compile(LOOP_SRC).unwrap();
    let r = p.simulate(&[4], &SimConfig::perfect()).unwrap();
    assert!(r.profile.is_none());
    assert!(r.trace.is_none());
    assert!(r.crit.is_none());
}

/// The trace exporter is deterministic: same program, same input -> byte
/// identical Chrome trace JSON, pinned against a golden literal for a
/// minimal circuit.
#[test]
fn perfetto_export_is_golden_and_byte_stable() {
    let p =
        Compiler::new().level(OptLevel::Full).compile("int main(int x) { return x + 1; }").unwrap();
    let cfg = SimConfig { trace: true, ..SimConfig::perfect() };
    let run = || {
        let r = p.simulate(&[41], &cfg).unwrap();
        assert_eq!(r.ret, Some(42));
        p.trace_to_chrome_json(r.trace.as_ref().expect("tracing enabled"))
    };
    let json = run();
    assert_eq!(json, run(), "two runs must serialize identically");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/minimal_trace.json");
        std::fs::write(path, format!("{json}\n")).unwrap();
    }
    let golden = include_str!("golden/minimal_trace.json").trim_end();
    assert_eq!(json, golden, "trace schema or scheduling drifted from the golden file (rerun with UPDATE_GOLDEN=1 to bless)");
}

/// The bigger loop trace holds firings and memory slices, stays
/// deterministic, and every record is on the simulated-cycle timeline.
#[test]
fn loop_trace_covers_firings_and_memory() {
    let (p, r) = observed(OptLevel::None, 8);
    let trace = r.trace.as_ref().unwrap();
    let fires =
        trace.events.iter().filter(|e| matches!(e, cash::TraceEvent::Fire { .. })).count() as u64;
    assert_eq!(fires, r.fired, "one Fire slice per firing");
    let mems =
        trace.events.iter().filter(|e| matches!(e, cash::TraceEvent::Mem { .. })).count() as u64;
    assert_eq!(mems, r.stats.loads + r.stats.stores, "one Mem slice per access");
    let json = p.trace_to_chrome_json(trace);
    assert!(json.contains("\"cat\":\"mem\""));
    assert!(json.contains("\"ph\":\"C\""), "LSQ occupancy counter track present");
    assert_eq!(json, p.trace_to_chrome_json(r.trace.as_ref().unwrap()));
}

/// The heat-map overlay colors hot nodes and widens stalled borders.
#[test]
fn heat_map_overlay_reflects_the_profile() {
    let (p, r) = observed(OptLevel::None, 8);
    let prof = r.profile.as_ref().unwrap();
    let dot = p.to_dot_heat(prof);
    assert!(dot.contains("digraph"));
    assert!(dot.contains("fillcolor=\"0.000"), "firing-count fill present");
    // The hottest node is saturated red; something cold stays white.
    assert!(dot.contains("fillcolor=\"0.000 1.000 1.000\""));
    assert!(dot.contains("fillcolor=\"0.000 0.000 1.000\""));
}

/// Profile and combined stats serialize under the shared JSON schema.
#[test]
fn telemetry_shares_one_json_schema() {
    let (p, r) = observed(OptLevel::Full, 8);
    let prof_json = p.profile_to_json(r.profile.as_ref().unwrap());
    assert!(prof_json.starts_with("{\"cycles\":"));
    assert!(prof_json.contains("\"stalled\":{\"data\":"));

    let rec = cash::StatsRecord {
        bench: "test",
        kernel: "loop",
        level: "Full",
        system: "perfect",
        opt: &p.report,
        sim: &r,
        spans: &p.spans,
    };
    let line = rec.to_json();
    assert!(line.starts_with("{\"schema\":\"cash-stats-v1\""));
    // PR 6's compiler span tree is the newest additive section: the whole
    // pipeline appears as compact rows, frontend before opt passes.
    assert!(line.contains("\"spans\":[[\"frontend.parse\","), "span rows in the record: {line}");
    assert!(line.contains("[\"opt\","), "optimizer span in the record");
    assert!(line.contains("[\"compile\",0,"), "root span at depth 0");
    assert!(line.contains("\"passes\":[{\"pass\":\"scalar\""));
    assert!(line.contains("\"sim\":{\"ret\":6"));
    // PR 1's stall-cause totals now ride along in the sim section, and the
    // critical-path summary is the additive "crit" key.
    assert!(line.contains("\"stalled\":{\"data\":"), "stall totals in the record: {line}");
    assert!(line.contains("\"crit\":{\"path_len\":"), "crit summary in the record: {line}");
    assert!(line.contains("\"classes\":{\"data\":"), "per-class split in the record");
    assert!(line.contains("\"lsq_high_water\":"), "memory timeline in the record");
    // The static lint reports its wall time and per-rule counts in the same
    // record (all-zero counts on a clean kernel, but the keys are present).
    assert!(line.contains("\"lint\":{\"us\":"), "lint wall time in the record");
    assert!(line.contains("\"token_race\":0"), "per-rule lint counts in the record");
    assert!(!line.contains('\n'));

    // Pass telemetry adds up and records real deltas.
    assert!(!p.report.passes.is_empty());
    let pruned = p.report.passes.iter().find(|ps| ps.name == "prune_dead").unwrap();
    assert!(pruned.nodes.1 <= pruned.nodes.0, "prune never grows the graph");
    // Rule counters agree with the per-pass rewrite counts (the pipeline
    // pass reports loops as its rewrite count; rings/token-gens are
    // byproducts counted by rule only).
    let rules: usize = p.report.rules().iter().map(|(_, v)| *v).sum();
    let rewrites: usize = p.report.passes.iter().map(|ps| ps.rewrites).sum();
    assert_eq!(rules, rewrites + p.report.rings_created + p.report.token_gens);
}

/// The critical-path recorder attributes every end-to-end cycle to an
/// edge class, measures the memory system, and renders the DOT overlay.
#[test]
fn critical_path_covers_the_run_and_renders_the_overlay() {
    let (p, r) = observed(OptLevel::None, 8);
    let crit = r.crit.as_ref().expect("critpath enabled");
    // The last-arrival walk telescopes: cycles = start + sum over classes.
    assert_eq!(crit.attributed_total(), r.cycles - crit.start, "attribution covers the run");
    assert!(crit.path_len > 0);
    // The exit load waits on the store token chain at level None, so the
    // token class carries cycles and the body store sits on the path.
    assert!(crit.class_cycles(cash::EdgeClass::Token) > 0, "token serialization on the path");
    let stores: Vec<_> = p
        .graph
        .live_ids()
        .filter(|&id| matches!(p.graph.kind(id), NodeKind::Store { .. }))
        .collect();
    assert!(crit.node_counts[stores[0].index()] >= 1, "the loop store is on the path");
    // The memory timeline saw the LSQ occupied, all at the L1/perfect level.
    assert!(crit.timeline.lsq_high_water >= 1);
    assert!(crit.timeline.occupancy_cycles.iter().skip(1).sum::<u64>() > 0);
    assert!(crit.timeline.level_high_water[0] >= 1);
    assert_eq!(crit.timeline.level_high_water[1], 0, "perfect memory never reaches L2");

    let dot = p.to_dot_crit(crit);
    assert!(dot.contains("digraph"));
    assert!(dot.contains("fillcolor=\"0.083"), "orange path fill present");
    assert!(dot.contains(" cy\""), "critical edges labelled with cycles");

    // Same program, same input: the summary is deterministic.
    let r2 = p
        .simulate(
            &[8],
            &SimConfig { profile: true, trace: true, critpath: true, ..SimConfig::perfect() },
        )
        .unwrap();
    assert_eq!(r.crit, r2.crit);
}

/// A deadlocked circuit names the blocked nodes and the input class each
/// one is missing, both in the error itself and in `diagnose`'s dump.
#[test]
fn deadlock_reports_blocked_nodes_and_missing_inputs() {
    use cfgir::objects::ObjectSet;
    use cfgir::types::{BinOp, Type};
    use cfgir::Module;
    use pegasus::{Src, VClass};

    // A return whose token never arrives: an eta with a dynamically false
    // predicate swallows it (same shape as the ashsim unit test).
    let module = Module::new();
    let mut g = pegasus::Graph::new();
    let t = g.add_node(NodeKind::InitialToken, 0, 0);
    let ptrue = g.const_bool(true, 0);
    let addr = g.add_node(NodeKind::Const { value: 0x1000, ty: Type::int(64) }, 0, 0);
    let l = g.add_node(NodeKind::Load { ty: Type::int(32), may: ObjectSet::Top }, 3, 0);
    g.connect(Src::of(addr), l, 0);
    g.connect(Src::of(ptrue), l, 1);
    g.connect(Src::of(t), l, 2);
    let zero = g.add_node(NodeKind::Const { value: 0, ty: Type::int(32) }, 0, 0);
    let lt = g.add_node(NodeKind::BinOp { op: BinOp::Lt, ty: Type::Bool }, 2, 0);
    g.connect(Src::of(l), lt, 0);
    g.connect(Src::of(zero), lt, 1);
    let eta = g.add_node(NodeKind::Eta { vc: VClass::Token, ty: Type::Bool }, 2, 0);
    g.connect(Src::token_of_load(l), eta, 0);
    g.connect(Src::of(lt), eta, 1);
    let ret = g.add_node(NodeKind::Return { has_value: false, ty: Type::Void }, 2, 0);
    g.connect(Src::of(ptrue), ret, 0);
    g.connect(Src::of(eta), ret, 1);

    let mut machine = ashsim::Machine::new(&module, ashsim::MemSystem::Perfect { latency: 2 });
    let err = ashsim::simulate(&g, &mut machine, &[], &SimConfig::perfect()).unwrap_err();
    let cash::SimError::Deadlock { cycle, ref blocked } = err else {
        panic!("expected deadlock, got {err}");
    };
    assert!(cycle > 0);
    assert!(!blocked.is_empty(), "deadlock must name the stuck nodes");
    let ret_block = blocked.iter().find(|b| b.node == ret).expect("return is stuck");
    assert!(
        ret_block.missing.iter().any(|&(_, c)| c == VClass::Token),
        "the return is missing its token input: {ret_block}"
    );
    // The report names the operation and its hyperblock, not just the id.
    assert_eq!(ret_block.op, "ret");
    assert_eq!(ret_block.hb, 0);
    let msg = err.to_string();
    assert!(msg.contains("dataflow deadlock at cycle"), "{msg}");
    assert!(msg.contains("waiting on"), "{msg}");
    assert!(msg.contains("(ret hb0)"), "blocked nodes carry kind + hyperblock: {msg}");

    // `diagnose` adds FIFO depths and the flight-recorder tail — the last
    // firings before the stall, cycle-stamped — on top of the same report.
    let mut machine = ashsim::Machine::new(&module, ashsim::MemSystem::Perfect { latency: 2 });
    let (e2, dump) = ashsim::diagnose(&g, &mut machine, &[], &SimConfig::perfect()).unwrap_err();
    assert_eq!(e2, err);
    assert!(dump.contains("fifo lens"), "{dump}");
    assert!(dump.contains("recent firings"), "firing tail in the dump: {dump}");
    assert!(dump.contains("cycle "), "firings carry cycle stamps: {dump}");
    assert!(dump.contains("[load]"), "firings carry node kinds: {dump}");
}

/// One merged Perfetto timeline shows the compiler (per-pass spans in
/// microseconds) and the simulated circuit (slices in cycles) for a
/// Figure 19 kernel — the PR 6 acceptance artifact.
#[test]
fn merged_trace_shows_compiler_and_simulator_on_one_timeline() {
    let w = workloads::by_name("g721_e").expect("fig19 kernel present");
    let p = w.compile(OptLevel::Full).unwrap();
    let cfg = SimConfig { profile: true, trace: true, ..SimConfig::perfect() };
    let r = p.simulate(&[8], &cfg).unwrap();
    let merged = p.merged_trace_json(r.trace.as_ref().expect("tracing enabled"));

    // Still one well-formed chrome trace...
    assert!(merged.starts_with("{\"traceEvents\":["));
    assert_eq!(merged.matches("\"traceEvents\"").count(), 1);
    // ...with the compiler's process track and its per-stage spans...
    assert!(merged.contains("\"name\":\"compiler (us)\""), "compiler track named");
    assert!(merged.contains("\"name\":\"compile\""), "root compile span present");
    assert!(merged.contains("\"name\":\"frontend.parse\""), "frontend spans present");
    let pass_spans = p.spans.iter().filter(|s| s.name.starts_with("opt.")).count();
    assert!(pass_spans > 0, "per-pass optimizer spans captured: {:?}", p.spans);
    // ...next to the simulator's firing slices on the same timeline.
    assert!(merged.contains("\"cat\":\"fire\""), "simulator slices survive the merge");
    assert!(merged.contains("\"ph\":\"C\""), "LSQ counter track survives the merge");
}
