//! Sabotage coverage for the static layer: every `OptConfig::sabotage(pass)`
//! fault-injection mode, checked against `pegasus::verify_all` + `lint` on
//! generated programs, **without ever running the simulator**.
//!
//! Two modes corrupt a semantic invariant the lint models and must be flagged
//! on at least one generated program:
//!
//! - `loop_invariant` re-creates PR 2's wrong-rate hoisting bug (a merge ring
//!   entry slot fed at a per-wave rate) — caught by the rate analysis.
//! - `token_removal` dissolves a live ordering edge between may-aliasing
//!   memory operations — caught by the token-race analysis.
//!
//! Any other mode (e.g. `load_store`) flips the first integer `Add` into a
//! `Sub`. That graph is *statically invisible by design*: it is structurally
//! well formed, its tokens, predicates, and rates are untouched, and no
//! analysis short of re-deriving the program's arithmetic can tell the two
//! opcodes apart. Those faults are exactly what the differential harness
//! exists for, and the test below documents that division of labor by
//! asserting the static layer stays silent on them.

use cash::Compiler;
use opt::OptLevel;
use refinterp::gen;

const SEEDS: std::ops::Range<u64> = 0..24;

/// Compiles seed's program with the given sabotage mode at `Full` and
/// returns `(structural errors, lint diagnostics)`. No simulation runs.
fn static_verdict(seed: u64, mode: &'static str) -> (usize, usize) {
    let src = gen::render(&gen::gen(seed));
    let cfg = OptLevel::Full.config().sabotage(mode);
    let p = Compiler::new().config(cfg).compile(&src).expect("sabotaged compile succeeds");
    (pegasus::verify_all(&p.graph).len(), p.report.lint.diags.len())
}

/// The two semantically visible modes must each be flagged on at least one
/// generated program — purely statically.
#[test]
fn semantic_sabotage_is_statically_visible() {
    for mode in ["loop_invariant", "token_removal"] {
        let verdicts = cash::par::par_map(SEEDS.collect::<Vec<_>>(), |s| static_verdict(s, mode));
        let flagged = verdicts.iter().filter(|&&(v, l)| v + l > 0).count();
        assert!(
            flagged > 0,
            "sabotage({mode}) must be caught by verify_all + lint on at least \
             one of {} generated programs",
            SEEDS.end
        );
    }
}

/// The opcode-flip mode is statically invisible (see module docs): the static
/// layer must stay silent so the differential harness, not the lint, owns
/// this fault class. If this test ever fails, a lint rule has started
/// second-guessing arithmetic and is almost certainly unsound elsewhere.
#[test]
fn opcode_flip_sabotage_is_statically_invisible() {
    let verdicts =
        cash::par::par_map(SEEDS.collect::<Vec<_>>(), |s| static_verdict(s, "load_store"));
    for (seed, (verify, lint)) in verdicts.into_iter().enumerate() {
        assert_eq!(
            (verify, lint),
            (0, 0),
            "seed {seed}: an Add->Sub flip must not trip the static layer"
        );
    }
}
