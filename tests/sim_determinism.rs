//! Simulator determinism: golden `SimResult`s captured before the
//! allocation-free core rewrite.
//!
//! The simulator's observable outcome — return value, completion cycle,
//! firing count and the per-level cache/TLB breakdown — must be a pure
//! function of (circuit, arguments, configuration). This sweep pins that
//! outcome for a seeded corpus of generated programs and for every suite
//! kernel, against goldens captured from the pre-rewrite event-queue
//! implementation. Any divergence means the core changed *semantics*, not
//! just speed.
//!
//! Regenerate the golden file (only when an intentional semantic change
//! lands) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -q -p cash-integration --test sim_determinism
//! ```

use cash::{BackendKind, CacheParams, Compiler, MemSystem, OptLevel, SimConfig, SimResult};
use refinterp::gen;
use std::fmt::Write;

const GOLDEN: &str = include_str!("golden/sim_determinism.txt");
const GOLDEN_PATH: &str = "tests/golden/sim_determinism.txt";

/// Seeded generated-program corpus: ≥50 programs at two opt levels.
const GEN_SEEDS: u64 = 55;

/// One observed run rendered as a stable golden line.
fn line(name: &str, level: &str, system: &str, r: &SimResult) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{name} {level} {system} ret={} cycles={} fired={} mem={}",
        r.ret.map_or("none".to_string(), |v| v.to_string()),
        r.cycles,
        r.fired,
        r.stats.to_json(),
    );
    s
}

/// The golden file was captured from the event-queue implementation; the
/// corpus is parameterized by backend so the compiled backend is pinned
/// against the *same* outcomes (the golden line format contains no
/// backend- or wall-time-dependent field).
fn perfect(backend: BackendKind) -> SimConfig {
    SimConfig { mem: MemSystem::Perfect { latency: 2 }, ..SimConfig::default() }
        .with_backend(backend)
}

fn hierarchy(backend: BackendKind) -> SimConfig {
    SimConfig { mem: MemSystem::Hierarchy(CacheParams::default()), ..SimConfig::default() }
        .with_backend(backend)
}

/// Runs the whole corpus, producing one line per (program, level, system).
fn observe_corpus(backend: BackendKind) -> Vec<String> {
    let mut gen_tasks = Vec::new();
    for seed in 0..GEN_SEEDS {
        for level in [OptLevel::None, OptLevel::Full] {
            gen_tasks.push((seed, level));
        }
    }
    let mut out = cash::par::par_map(gen_tasks, |(seed, level)| {
        let src = gen::render(&gen::gen(seed));
        let p = Compiler::new()
            .level(level)
            .compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed} at {level}: {e}"));
        let r = p
            .simulate(&[(seed % 11) as i64], &perfect(backend))
            .unwrap_or_else(|e| panic!("seed {seed} at {level}: {e}"));
        line(&format!("gen{seed:03}"), &level.to_string(), "perfect", &r)
    });
    let kernel_tasks: Vec<_> = workloads::suite()
        .into_iter()
        .flat_map(|w| {
            [(OptLevel::Full, "perfect"), (OptLevel::Full, "cache"), (OptLevel::None, "perfect")]
                .into_iter()
                .map(move |(level, system)| (w.name, w.source, w.default_arg, level, system))
        })
        .collect();
    out.extend(cash::par::par_map(kernel_tasks, |(name, source, arg, level, system)| {
        let cfg = if system == "cache" { hierarchy(backend) } else { perfect(backend) };
        let p = Compiler::new()
            .level(level)
            .compile(source)
            .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
        let r =
            p.simulate(&[arg], &cfg).unwrap_or_else(|e| panic!("{name} at {level}/{system}: {e}"));
        line(name, &level.to_string(), system, &r)
    }));
    // Critical-path summaries: the last-arrival tie-break must be stable
    // under the calendar-ring event order, so the per-class cycle split
    // and path length of every kernel are golden too.
    let crit_tasks: Vec<_> = workloads::suite()
        .into_iter()
        .flat_map(|w| {
            [OptLevel::None, OptLevel::Full]
                .into_iter()
                .map(move |level| (w.name, w.source, w.default_arg, level))
        })
        .collect();
    out.extend(cash::par::par_map(crit_tasks, |(name, source, arg, level)| {
        let cfg = perfect(backend).with_critpath(true);
        let p = Compiler::new()
            .level(level)
            .compile(source)
            .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
        let r = p.simulate(&[arg], &cfg).unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
        let c = r.crit.as_ref().expect("critpath enabled");
        assert_eq!(c.attributed_total(), r.cycles - c.start, "{name} at {level}: full coverage");
        format!(
            "crit {name} {level} path_len={} start={} classes={}",
            c.path_len,
            c.start,
            c.classes_json()
        )
    }));
    out
}

fn check_against_golden(backend: BackendKind) {
    let observed = observe_corpus(backend);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        if backend != BackendKind::Event {
            // One writer: the golden is captured from the event backend;
            // the compiled backend is held to it, never defines it.
            return;
        }
        let mut text = observed.join("\n");
        text.push('\n');
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(GOLDEN_PATH);
        std::fs::write(&path, text).expect("write golden");
        eprintln!("golden updated: {} lines -> {}", observed.len(), path.display());
        return;
    }
    let golden: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(
        golden.len(),
        observed.len(),
        "golden has {} lines, corpus produced {} — regenerate with UPDATE_GOLDEN=1 \
         only if the simulator's semantics intentionally changed",
        golden.len(),
        observed.len()
    );
    let mut bad = 0usize;
    for (g, o) in golden.iter().zip(&observed) {
        if g != o {
            bad += 1;
            if bad <= 8 {
                eprintln!("golden:   {g}\nobserved: {o}\n");
            }
        }
    }
    assert_eq!(
        bad,
        0,
        "{bad} of {} corpus runs diverged from the pre-rewrite simulator ({backend:?} backend)",
        golden.len()
    );
}

#[test]
fn simulator_results_match_pre_rewrite_goldens() {
    check_against_golden(BackendKind::Event);
}

/// The compiled backend is pinned to the very same golden outcomes as the
/// event backend — not merely to "whatever the event backend says today".
#[test]
fn compiled_backend_matches_pre_rewrite_goldens() {
    check_against_golden(BackendKind::Compiled);
}
