//! Waveform capture and deterministic replay: the observability tier for
//! `SimConfig::waves`.
//!
//! Three properties are pinned here:
//!
//! 1. **VCD byte-stability.** The exported waveform is a pure function of
//!    (circuit, arguments, configuration) — goldens for three kernels,
//!    regenerated only on intentional capture-format changes with:
//!
//!    ```text
//!    UPDATE_GOLDEN=1 cargo test -q -p cash-integration --test waves
//!    ```
//!
//! 2. **Backend equivalence.** The event interpreter and the compiled
//!    executor mirror the capture hooks line-for-line, so the whole suite
//!    must emit *byte-identical* VCD under both backends.
//!
//! 3. **Checkpoint round-trips.** `Replay` restores executor snapshots
//!    and re-executes; because delivery order is pinned to `(cycle, seq)`,
//!    resuming from any cycle must reproduce the uninterrupted run's
//!    final record exactly, and reverse-step must land on the same state
//!    the forward pass saw.

use cash::{BackendKind, Compiler, MemSystem, OptLevel, Replay, SimConfig, StopReason};

fn perfect() -> SimConfig {
    SimConfig { mem: MemSystem::Perfect { latency: 2 }, ..SimConfig::default() }
}

/// Golden corpus: small arguments keep the committed files tens of KB.
const GOLDEN_KERNELS: [(&str, i64); 3] = [("adpcm_e", 2), ("gsm_e", 2), ("099.go", 2)];

fn golden_path(kernel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("waves_{}.vcd", kernel.replace('.', "_")))
}

#[test]
fn vcd_goldens_are_byte_stable() {
    for (kernel, arg) in GOLDEN_KERNELS {
        let w = workloads::by_name(kernel).expect("suite kernel");
        let p = Compiler::new().level(OptLevel::Full).compile(w.source).unwrap();
        let cfg = perfect().with_backend(BackendKind::Event).with_waves(true);
        let r = p.simulate(&[arg], &cfg).unwrap();
        let vcd = r.waves.as_ref().expect("waves enabled").to_vcd(&p.graph);
        let path = golden_path(kernel);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &vcd).expect("write golden");
            eprintln!("golden updated: {} bytes -> {}", vcd.len(), path.display());
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{}: {e} — regenerate with UPDATE_GOLDEN=1", path.display())
        });
        assert_eq!(vcd, golden, "{kernel}: VCD drifted from the golden capture");
    }
}

/// Every suite kernel, both backends, byte-identical VCD. Reduced
/// arguments keep the captures (every value change on every port) fast.
#[test]
fn backends_emit_identical_vcd_for_every_kernel() {
    let suite = workloads::suite();
    assert!(suite.len() >= 16, "suite shrank to {}", suite.len());
    cash::par::par_map(suite, |w| {
        let p = Compiler::new().level(OptLevel::Full).compile(w.source).unwrap();
        let arg = (w.default_arg / 4).max(1);
        let run = |backend| {
            let cfg = perfect().with_backend(backend).with_waves(true);
            let r = p.simulate(&[arg], &cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            r.waves.expect("waves enabled")
        };
        let ev = run(BackendKind::Event);
        let co = run(BackendKind::Compiled);
        assert_eq!(ev, co, "{}: capture diverged between backends", w.name);
        assert_eq!(
            ev.to_vcd(&p.graph),
            co.to_vcd(&p.graph),
            "{}: VCD not byte-identical between backends",
            w.name
        );
    });
}

/// Waves stay out of the stats record (and the goldens) unless asked for.
#[test]
fn waves_off_leaves_the_sim_record_unchanged() {
    let w = workloads::by_name("adpcm_e").expect("suite kernel");
    let p = Compiler::new().level(OptLevel::Full).compile(w.source).unwrap();
    let off = p.simulate(&[4], &perfect()).unwrap();
    assert!(off.waves.is_none());
    assert!(!off.to_json().contains("\"waves\""));
    let on = p.simulate(&[4], &perfect().with_waves(true)).unwrap();
    assert!(on.to_json().contains("\"waves\":{\"signals\":"));
    // The capture is additive: everything else is untouched.
    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.fired, on.fired);
    assert_eq!(off.ret, on.ret);
}

/// Zeroes the wall-time field (the one nondeterministic part of the
/// record) — same normalization as the backend-equivalence tier.
fn normalize(json: &str) -> String {
    let mut s = json.to_string();
    if let Some(at) = s.find("\"us\":") {
        let start = at + "\"us\":".len();
        let end = start + s[start..].chars().take_while(char::is_ascii_digit).count();
        s.replace_range(start..end, "0");
    }
    s
}

/// Resuming from a checkpoint and running to completion must reproduce
/// the uninterrupted recording pass byte-for-byte — including the waves
/// summary, since snapshots carry the capture.
#[test]
fn checkpoint_resume_reproduces_the_final_record() {
    let w = workloads::by_name("g721_e").expect("suite kernel");
    let p = Compiler::new().level(OptLevel::Full).compile(w.source).unwrap();
    let cfg = perfect();
    let machine = p.machine(cfg.mem.clone());
    let mut rp = Replay::new(&p.graph, machine, &[10], &cfg, 128).unwrap();
    let golden = normalize(&rp.final_result().to_json());
    let end = rp.final_result().cycles;
    assert!(rp.checkpoint_cycles().len() > 3, "run too short for the interval");

    // Resume from several cursor positions, including past-the-middle
    // ones that restore a late checkpoint.
    for frac in [0u64, 1, 3, 7] {
        let c = end * frac / 8;
        assert_eq!(rp.run_to(c).unwrap(), StopReason::Cycle(c));
        assert_eq!(rp.now(), c);
        assert!(matches!(rp.cont().unwrap(), StopReason::Finished));
        let resumed = rp.finished().expect("cursor ran to completion");
        assert_eq!(
            normalize(&resumed.to_json()),
            golden,
            "resume at cycle {c} diverged from the uninterrupted run"
        );
    }
}

/// Reverse-step is exact: stepping back re-lands on the precise forward
/// state (cycle, firing count and the entire capture history).
#[test]
fn reverse_step_reproduces_forward_state() {
    let w = workloads::by_name("adpcm_e").expect("suite kernel");
    let p = Compiler::new().level(OptLevel::Full).compile(w.source).unwrap();
    let cfg = perfect();
    let machine = p.machine(cfg.mem.clone());
    let mut rp = Replay::new(&p.graph, machine, &[8], &cfg, 64).unwrap();

    rp.run_to(200).unwrap();
    let fired = rp.fired();
    let wave = rp.wave().clone();
    rp.step(150).unwrap();
    assert_eq!(rp.now(), 350);
    rp.reverse_step(150).unwrap();
    assert_eq!(rp.now(), 200, "reverse-step must land on the exact cycle");
    assert_eq!(rp.fired(), fired, "firing count must round-trip");
    assert_eq!(*rp.wave(), wave, "capture history must round-trip");

    // Breakpoints respect replayed time: a fire break hits at the same
    // cycle whether reached forward or after time travel.
    let hops = rp.hops().to_vec();
    assert!(!hops.is_empty(), "critical path recorded");
    let (node, t) = hops[hops.len() / 2];
    rp.run_to(0).unwrap();
    rp.add_break(cash::Breakpoint::Fire(node));
    match rp.cont().unwrap() {
        StopReason::Breakpoint { cycle, .. } => {
            assert!(cycle <= t, "first fire of {node} can't be after its crit hop at {t}");
        }
        other => panic!("expected a breakpoint hit for {node}, got {other:?}"),
    }
}
