//! Suite-level properties over the benchmark kernels: the Figure 18/19
//! claims in miniature, checked as hard assertions.

use cash::{MemSystem, OptLevel, SimConfig};
use refinterp::{diff_source, DiffOptions, DiffOutcome};
use workloads::suite;

#[test]
fn every_kernel_agrees_with_the_reference_interpreter() {
    // Each benchmark kernel, at every opt level, must match the reference
    // interpreter's return value *and* final memory image. This pins the
    // whole pipeline (frontend, Pegasus build, every pass, the simulator)
    // against an independent executable semantics.
    let opts = DiffOptions { fuel: 1 << 26, max_cycles: 5_000_000, ..DiffOptions::default() };
    for w in suite() {
        match diff_source(w.source, &[w.default_arg], &opts) {
            DiffOutcome::Agree => {}
            DiffOutcome::OracleError(e) => panic!("{}: oracle could not run kernel: {e}", w.name),
            DiffOutcome::Fail(f) => panic!(
                "{} at {:?}: {}\nfirst offending pass: {:?}",
                w.name, f.level, f.detail, f.pass
            ),
        }
    }
}

#[test]
fn full_optimization_never_increases_dynamic_memory_traffic() {
    for w in suite() {
        let base = w.run(OptLevel::None, w.default_arg, &SimConfig::perfect()).unwrap();
        let full = w.run(OptLevel::Full, w.default_arg, &SimConfig::perfect()).unwrap();
        assert_eq!(base.ret, full.ret, "{}", w.name);
        assert!(
            full.stats.loads <= base.stats.loads,
            "{}: loads {} -> {}",
            w.name,
            base.stats.loads,
            full.stats.loads
        );
        assert!(
            full.stats.stores <= base.stats.stores,
            "{}: stores {} -> {}",
            w.name,
            base.stats.stores,
            full.stats.stores
        );
    }
}

#[test]
fn full_optimization_never_slows_a_kernel_down_much() {
    // The paper's Figure 19 shape: optimized ≥ baseline performance for the
    // suite as a whole. Individual kernels may regress slightly — merging
    // stores from many branches builds a wide selection mux that can extend
    // the critical path (the paper likewise reports optimizations whose
    // interactions are not uniformly positive) — so the per-kernel bound is
    // loose and the aggregate bound is strict (see suite_shows_aggregate_speedup).
    for w in suite() {
        let base = w.run(OptLevel::None, w.default_arg, &SimConfig::perfect()).unwrap();
        let full = w.run(OptLevel::Full, w.default_arg, &SimConfig::perfect()).unwrap();
        assert!(
            (full.cycles as f64) <= (base.cycles as f64) * 1.30,
            "{}: {} -> {} cycles",
            w.name,
            base.cycles,
            full.cycles
        );
    }
}

#[test]
fn suite_shows_aggregate_speedup() {
    let mut base_total = 0u64;
    let mut full_total = 0u64;
    for w in suite() {
        let cfg = SimConfig { mem: MemSystem::default(), ..SimConfig::default() };
        base_total += w.run(OptLevel::None, w.default_arg, &cfg).unwrap().cycles;
        full_total += w.run(OptLevel::Full, w.default_arg, &cfg).unwrap().cycles;
    }
    assert!(full_total < base_total, "suite total must improve: {base_total} -> {full_total}");
}

#[test]
fn static_memory_operations_shrink_somewhere() {
    // Figure 18: up to 28% of loads and 8% of stores disappear; at minimum
    // the suite must show a nonzero static reduction overall.
    let mut before = (0usize, 0usize);
    let mut after = (0usize, 0usize);
    for w in suite() {
        let p = w.compile(OptLevel::Full).unwrap();
        before.0 += p.static_unoptimized.0;
        before.1 += p.static_unoptimized.1;
        let (l, s) = p.static_memory_ops();
        after.0 += l;
        after.1 += s;
    }
    assert!(after.0 < before.0, "loads: {before:?} -> {after:?}");
    assert!(after.1 <= before.1, "stores: {before:?} -> {after:?}");
}

#[test]
fn memory_hierarchy_matters_for_large_kernels() {
    // Kernels with big footprints must show cache sensitivity.
    let w = workloads::by_name("130.li").expect("li exists");
    let perfect = w.run(OptLevel::Full, w.default_arg, &SimConfig::perfect()).unwrap();
    let real = w
        .run(
            OptLevel::Full,
            w.default_arg,
            &SimConfig { mem: MemSystem::default(), ..SimConfig::default() },
        )
        .unwrap();
    assert_eq!(perfect.ret, real.ret);
    assert!(real.stats.l1_misses > 0);
}

#[test]
fn pragmas_actually_help_their_kernels() {
    // epic_e declares its two output planes independent; the annotation
    // must not change results.
    let w = workloads::by_name("epic_e").unwrap();
    assert!(w.pragmas > 0);
    let with = w.run(OptLevel::Full, w.default_arg, &SimConfig::perfect()).unwrap();
    let without_src = w.source.replace("#pragma independent low high", "");
    let p = cash::Compiler::new().compile(&without_src).unwrap();
    let without = p.simulate(&[w.default_arg], &SimConfig::perfect()).unwrap();
    assert_eq!(with.ret, without.ret);
}
