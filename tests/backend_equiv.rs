//! Differential backend equivalence: the compiled (lowered-bytecode)
//! simulator must be *bit-identical* to the event-driven interpreter.
//!
//! The compiled backend's entire claim is "same semantics, less time":
//! delivery sequence numbers arbitrate `Merge` nodes, so even a reordered
//! worklist would change observable cycle counts. This tier runs the full
//! kernel suite (all optimization levels, everything-on instrumentation)
//! and a 300-program generated corpus through both backends and requires
//! identical return values, cycle/firing/deferral counts, final memory
//! images, and byte-identical `cash-stats-v1` sim records modulo the two
//! provenance fields (`"us"` wall time and the `"backend"` label itself).

use cash::{BackendKind, CacheParams, Compiler, MemSystem, OptLevel, Program, SimConfig};
use refinterp::gen;

/// Generated-program corpus size (seeds × two opt levels = 300 programs).
const GEN_SEEDS: u64 = 150;

/// Normalizes a `SimResult::to_json` record for cross-backend comparison:
/// zeroes the wall-time field and blanks the backend label. Everything
/// else — including profile stall totals and the critical-path summary —
/// must match byte-for-byte.
fn normalize(json: &str) -> String {
    let mut s = json.replacen("\"backend\":\"event\"", "\"backend\":\"_\"", 1).replacen(
        "\"backend\":\"compiled\"",
        "\"backend\":\"_\"",
        1,
    );
    if let Some(at) = s.find("\"us\":") {
        let start = at + "\"us\":".len();
        let end = start + s[start..].chars().take_while(char::is_ascii_digit).count();
        s.replace_range(start..end, "0");
    }
    s
}

/// Runs `p` under both backends with `cfg` and asserts full observable
/// equivalence. Returns the (shared) normalized record for context.
fn assert_equiv(p: &Program, args: &[i64], cfg: &SimConfig, what: &str) {
    let run = |backend: BackendKind| {
        let cfg = cfg.clone().with_backend(backend);
        let mut machine = p.machine(cfg.mem.clone());
        let r = p
            .simulate_on(&mut machine, args, &cfg)
            .unwrap_or_else(|e| panic!("{what} [{backend:?}]: {e}"));
        (r, machine.image().to_vec())
    };
    let (ev, ev_mem) = run(BackendKind::Event);
    let (co, co_mem) = run(BackendKind::Compiled);
    assert_eq!(ev.backend, "event", "{what}: event run must label itself");
    assert_eq!(co.backend, "compiled", "{what}: compiled run must label itself");
    assert_eq!(ev.ret, co.ret, "{what}: return value");
    assert_eq!(ev.cycles, co.cycles, "{what}: completion cycle");
    assert_eq!(ev.fired, co.fired, "{what}: firing count");
    assert_eq!(ev.deferrals, co.deferrals, "{what}: deferral count");
    assert_eq!(ev_mem, co_mem, "{what}: final memory image");
    assert_eq!(
        normalize(&ev.to_json()),
        normalize(&co.to_json()),
        "{what}: sim record must be byte-identical modulo us/backend"
    );
}

/// Every suite kernel at every optimization level, with the heavyweight
/// configuration (realistic memory hierarchy, stall profiling and
/// critical-path recording all on) so the instrumented paths are
/// differentially covered too.
#[test]
fn kernels_agree_across_backends_at_all_levels() {
    let suite = workloads::suite();
    assert!(suite.len() >= 16, "suite shrank to {}", suite.len());
    let tasks: Vec<_> = suite
        .into_iter()
        .flat_map(|w| {
            OptLevel::ALL.into_iter().map(move |level| (w.name, w.source, w.default_arg, level))
        })
        .collect();
    cash::par::par_map(tasks, |(name, source, arg, level)| {
        let p = Compiler::new()
            .level(level)
            .compile(source)
            .unwrap_or_else(|e| panic!("{name} at {level}: {e}"));
        let cfg =
            SimConfig { mem: MemSystem::Hierarchy(CacheParams::default()), ..SimConfig::default() }
                .with_observability(true, false)
                .with_critpath(true);
        assert_equiv(&p, &[arg], &cfg, &format!("{name} at {level}"));
    });
}

/// 300 generated programs (150 seeds, unoptimized and fully optimized):
/// loops, branches, memory traffic and degenerate shapes the kernel suite
/// doesn't reach.
#[test]
fn generated_corpus_agrees_across_backends() {
    let mut tasks = Vec::new();
    for seed in 0..GEN_SEEDS {
        for level in [OptLevel::None, OptLevel::Full] {
            tasks.push((seed, level));
        }
    }
    assert_eq!(tasks.len(), 300);
    cash::par::par_map(tasks, |(seed, level)| {
        let src = gen::render(&gen::gen(seed));
        let p = Compiler::new()
            .level(level)
            .compile(&src)
            .unwrap_or_else(|e| panic!("seed {seed} at {level}: {e}"));
        let cfg = SimConfig { mem: MemSystem::Perfect { latency: 2 }, ..SimConfig::default() };
        assert_equiv(&p, &[(seed % 11) as i64], &cfg, &format!("gen{seed:03} at {level}"));
    });
}

/// Batched runs (one lowering, many runs) are the same as per-run
/// lowering, and the event path through a batch is untouched.
#[test]
fn batched_runs_match_individual_runs() {
    let w = workloads::by_name("g721_e").expect("suite kernel");
    let p = Compiler::new().compile(w.source).unwrap();
    let batch = p.batch();
    for backend in [BackendKind::Event, BackendKind::Compiled] {
        for arg in [1i64, 4, w.default_arg] {
            let cfg = SimConfig { mem: MemSystem::Perfect { latency: 2 }, ..SimConfig::default() }
                .with_backend(backend);
            let single = p.simulate(&[arg], &cfg).unwrap();
            let batched = batch.run(&[arg], &cfg).unwrap();
            assert_eq!(single.ret, batched.ret, "{backend:?} arg={arg}");
            assert_eq!(single.cycles, batched.cycles, "{backend:?} arg={arg}");
            assert_eq!(single.fired, batched.fired, "{backend:?} arg={arg}");
            assert_eq!(
                normalize(&single.to_json()),
                normalize(&batched.to_json()),
                "{backend:?} arg={arg}"
            );
        }
    }
}

/// Both backends report the same error on the same failing input.
#[test]
fn errors_agree_across_backends() {
    let p = Compiler::new().compile("int main(int n) { return n + 1; }").unwrap();
    let cfg = SimConfig { mem: MemSystem::Perfect { latency: 2 }, ..SimConfig::default() };
    let ev = p.simulate(&[], &cfg.clone().with_backend(BackendKind::Event)).unwrap_err();
    let co = p.simulate(&[], &cfg.with_backend(BackendKind::Compiled)).unwrap_err();
    assert_eq!(format!("{ev}"), format!("{co}"));
}
