//! Integration tests for the `obs` runtime as the pipeline actually uses
//! it: metric totals must not depend on `CASH_THREADS`, span capture must
//! nest correctly on `cash::par` workers, histogram merges must be
//! deterministic, and the flight recorder must dump on panic.
//!
//! The metrics registry and flight recorder are process-global, so every
//! test that reads them serializes on [`GATE`] — the assertions compare
//! before/after deltas and a concurrent test would pollute them.

use std::sync::Mutex;

use cash::{Compiler, OptLevel, SimConfig};

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

const SRC: &str = "
    int a[16];
    int main(int n) {
        for (int i = 0; i < n; i++) a[i] = i * 3;
        return a[5];
    }";

fn metric(snaps: &[obs::metrics::Snap], name: &str) -> u64 {
    snaps.iter().find(|s| s.name == name).map_or(0, |s| s.value)
}

/// Compiles the same batch of kernels through `cash::par` under
/// CASH_THREADS=1 and CASH_THREADS=4: the deterministic metric deltas
/// (run counts, rewrite counts, histogram populations) must be identical
/// — the per-thread shards merge with commutative ops only, so totals
/// cannot depend on how the work was partitioned.
#[test]
fn sweep_metric_totals_are_thread_count_independent() {
    let _g = gate();
    obs::set_enabled(true);
    let sweep = || {
        let jobs: Vec<&str> = vec![SRC; 8];
        let before = obs::metrics::snapshot();
        let programs = cash::par::par_map(jobs, |src| {
            Compiler::new().level(OptLevel::Full).compile(src).unwrap()
        });
        assert_eq!(programs.len(), 8);
        let after = obs::metrics::snapshot();
        let d = |name: &str| metric(&after, name) - metric(&before, name);
        // Deterministic deltas only: event counts, not wall-clock sums.
        (d("compile.runs"), d("opt.rewrites"), d("compile.us"), d("opt.pass.us"), d("lint.us"))
    };
    std::env::set_var("CASH_THREADS", "1");
    let serial = sweep();
    std::env::set_var("CASH_THREADS", "4");
    let parallel = sweep();
    std::env::remove_var("CASH_THREADS");
    assert_eq!(serial, parallel, "metric totals must not depend on CASH_THREADS");
    assert_eq!(serial.0, 8, "one compile.runs per job");
    assert!(serial.1 > 0, "the optimizer rewrote something");
}

/// Span capture is per-thread: each `cash::par` worker's compile returns
/// its own properly nested tree — a single depth-0 root covering every
/// child, children inside their parent's interval, and no cross-worker
/// bleed (every program sees exactly one root).
#[test]
fn span_capture_nests_correctly_on_par_workers() {
    let _g = gate();
    obs::set_enabled(true);
    std::env::set_var("CASH_THREADS", "4");
    let programs = cash::par::par_map(vec![SRC; 8], |src| {
        Compiler::new().level(OptLevel::Full).compile(src).unwrap()
    });
    std::env::remove_var("CASH_THREADS");
    for p in &programs {
        let roots: Vec<_> = p.spans.iter().filter(|s| s.depth == 0).collect();
        assert_eq!(roots.len(), 1, "exactly one root span per compile: {:?}", p.spans);
        let root = roots[0];
        assert_eq!(root.name, "compile");
        for s in &p.spans {
            // Every span fits inside the root's interval (±2µs for
            // independent truncation of start and duration)...
            assert!(s.start_us >= root.start_us, "{s:?} starts before the root");
            assert!(
                s.start_us + s.dur_us <= root.start_us + root.dur_us + 2,
                "{s:?} outlives the root"
            );
            // ...and every non-root span has an enclosing parent one
            // level up (capture keeps the stack discipline per worker).
            if s.depth > 0 {
                assert!(
                    p.spans.iter().any(|par| par.depth + 1 == s.depth
                        && par.start_us <= s.start_us
                        && par.start_us + par.dur_us + 2 >= s.start_us + s.dur_us),
                    "no enclosing parent for {s:?}"
                );
            }
        }
        let names: Vec<&str> = p.spans.iter().map(|s| s.name).collect();
        for expect in ["frontend", "frontend.parse", "opt", "pegasus.build", "lint.final"] {
            assert!(names.contains(&expect), "missing span {expect:?} in {names:?}");
        }
    }
}

/// Histogram merge is deterministic: feeding the same values through any
/// interleaving of threads yields byte-identical snapshot JSON for the
/// metric, including the derived quantiles.
#[test]
fn histogram_merge_renders_deterministic_json() {
    let _g = gate();
    obs::set_enabled(true);
    let vals: Vec<u64> = (0..200).map(|i| i * 13 % 257).collect();
    let h = obs::metrics::histogram("test.integration.hist");
    let run = |chunks: usize| {
        std::thread::scope(|s| {
            for c in vals.chunks(vals.len() / chunks) {
                s.spawn(move || {
                    obs::set_enabled(true);
                    for &v in c {
                        h.observe(v);
                    }
                    obs::metrics::flush_thread();
                });
            }
        });
        let json = obs::metrics::snapshot_json();
        let i = json.find("\"test.integration.hist\"").expect("metric rendered");
        json[i..].split('}').next().unwrap().to_string()
    };
    let first = run(1);
    // Totals double (the registry accumulates), so compare the *shape*:
    // the second pass over identical data must land in the same buckets.
    let second = run(4);
    let count = |s: &str, key: &str| -> u64 {
        let i = s.find(key).unwrap() + key.len();
        s[i..].split(|c: char| !c.is_ascii_digit()).next().unwrap().parse().unwrap()
    };
    assert_eq!(count(&second, "\"count\":"), 2 * count(&first, "\"count\":"));
    assert_eq!(count(&second, "\"sum\":"), 2 * count(&first, "\"sum\":"));
    assert_eq!(count(&second, "\"p50\":"), count(&first, "\"p50\":"));
    assert_eq!(count(&second, "\"p99\":"), count(&first, "\"p99\":"));
}

/// A panic anywhere after a compile dumps the flight recorder: the
/// sabotage hook miscompiles the kernel, the reference check panics, and
/// the installed hook stashes the recent span/event tail — the post-mortem
/// a CI log actually needs.
#[test]
fn flight_recorder_dumps_on_panic() {
    let _g = gate();
    obs::set_enabled(true);
    // `compile` installs the hook; sabotage flips an add into a sub, a
    // corruption invisible to every static layer.
    let cfg = OptLevel::Full.config().sabotage("load_store");
    let p = Compiler::new().config(cfg).compile(SRC).unwrap();
    // The corrupted circuit may compute garbage, trap, or spin — any
    // outcome other than the reference answer must panic inside the guard
    // (a tight cycle budget turns "spin" into an error promptly).
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let r = p
            .simulate(&[8], &SimConfig { max_cycles: 100_000, ..SimConfig::perfect() })
            .expect("sabotaged kernel simulates");
        assert_eq!(r.ret, Some(15), "sabotaged kernel must disagree with the reference");
    }));
    assert!(caught.is_err(), "the miscompile must be observable");
    let dump = obs::flight::last_dump().expect("panic hook stashed a dump");
    assert!(dump.contains("flight recorder ("), "dump header present: {dump}");
    assert!(dump.contains("opt.pass"), "recent optimizer events in the tail: {dump}");
    assert!(dump.contains("span"), "span completions in the tail: {dump}");
}
